"""Service-layer tests: queue, batching, cache, persistence, bit-identity."""

import json

import pytest

from repro.circuit.library import load
from repro.harness.runner import run_stuck_at, run_transition
from repro.patterns.random_gen import random_sequence
from repro.serve import (
    FaultSimService,
    JobQueue,
    QueueFull,
    ServeConfig,
    SpecError,
    cache_key,
    serialize_result,
)
from repro.serve.spec import JobSpec, SpecResolver


def make_service(tmp_path, **overrides):
    overrides.setdefault("workers", 0)
    config = ServeConfig(state_dir=str(tmp_path / "state"), **overrides)
    return FaultSimService(config)


S27_JOB = {"circuit": "s27", "random_patterns": 40, "seed": 7}


class TestSubmit:
    def test_submit_and_drain_completes(self, tmp_path):
        service = make_service(tmp_path)
        record, created = service.submit(dict(S27_JOB))
        assert created
        assert record.state == "queued"
        assert service.drain() == 1
        finished = service.status(record.job_id)
        assert finished.state == "done"
        assert not finished.cache_hit
        assert "csim-MV" in finished.summary

    def test_bad_specs_rejected(self, tmp_path):
        service = make_service(tmp_path)
        for payload in (
            {},  # no circuit
            {"circuit": "s27", "netlist": "INPUT(a)"},  # both sources
            {"circuit": "s27", "engine": "bogus"},
            {"circuit": "s27", "vectors": "01\n", "random_patterns": 4},
            {"circuit": "s27", "jobs": 0},
            {"circuit": "s27", "surprise": 1},
            {"netlist": "INPUT(a)\ng = FROB(a)\nOUTPUT(g)\n"},
        ):
            with pytest.raises(SpecError):
                service.submit(payload)
        assert service.store.all_records() == []

    def test_idempotency_key_returns_existing(self, tmp_path):
        service = make_service(tmp_path)
        first, created_first = service.submit(
            dict(S27_JOB, idempotency_key="alpha")
        )
        again, created_again = service.submit(
            dict(S27_JOB, idempotency_key="alpha")
        )
        assert created_first and not created_again
        assert again.job_id == first.job_id
        assert len(service.store.all_records()) == 1

    def test_queue_full_rejects_and_rolls_back(self, tmp_path):
        service = make_service(tmp_path, queue_limit=2)
        service.submit(dict(S27_JOB, seed=1))
        service.submit(dict(S27_JOB, seed=2))
        with pytest.raises(QueueFull):
            service.submit(dict(S27_JOB, seed=3))
        # The refused job left no durable trace; the queue still drains.
        assert len(service.store.all_records()) == 2
        assert service.metrics_snapshot()["jobs"]["rejected"] == 1
        assert service.drain() == 2

    def test_priority_orders_execution(self, tmp_path):
        service = make_service(tmp_path, max_batch=1)
        low, _ = service.submit(dict(S27_JOB, seed=1, priority=0))
        high, _ = service.submit(dict(S27_JOB, seed=2, priority=5))
        service.drain()
        assert (
            service.status(high.job_id).started_at
            < service.status(low.job_id).started_at
        )


class TestBitIdentity:
    """The acceptance criterion: service output == direct run output."""

    def test_stuck_at_matches_direct_run(self, tmp_path):
        service = make_service(tmp_path)
        record, _ = service.submit(dict(S27_JOB))
        service.drain()
        circuit = load("s27")
        tests = random_sequence(circuit, 40, seed=7)
        direct = run_stuck_at(circuit, tests, "csim-MV")
        assert service.result_bytes(record.job_id) == serialize_result(
            direct, circuit
        )

    def test_transition_matches_direct_run(self, tmp_path):
        service = make_service(tmp_path)
        record, _ = service.submit(
            {"circuit": "s27", "random_patterns": 30, "seed": 3, "transition": True}
        )
        service.drain()
        circuit = load("s27")
        tests = random_sequence(circuit, 30, seed=3)
        direct = run_transition(circuit, tests)
        assert service.result_bytes(record.job_id) == serialize_result(
            direct, circuit
        )

    def test_sharded_job_matches_direct_run(self, tmp_path):
        service = make_service(tmp_path)
        record, _ = service.submit(dict(S27_JOB, jobs=2))
        service.drain()
        assert service.status(record.job_id).state == "done"
        circuit = load("s27")
        tests = random_sequence(circuit, 40, seed=7)
        direct = run_stuck_at(circuit, tests, "csim-MV")
        assert service.result_bytes(record.job_id) == serialize_result(
            direct, circuit
        )

    @pytest.mark.parametrize("engine", ("csim", "PROOFS", "serial"))
    def test_other_engines_match_direct_runs(self, tmp_path, engine):
        service = make_service(tmp_path)
        record, _ = service.submit(dict(S27_JOB, engine=engine))
        service.drain()
        finished = service.status(record.job_id)
        assert finished.state == "done", finished.error
        circuit = load("s27")
        tests = random_sequence(circuit, 40, seed=7)
        direct = run_stuck_at(circuit, tests, engine)
        document = json.loads(service.result_bytes(record.job_id))
        expected = json.loads(serialize_result(direct, circuit))
        assert document["detected"] == expected["detected"]


class TestResultCache:
    def test_duplicate_served_from_cache_without_resimulation(self, tmp_path):
        service = make_service(tmp_path)
        first, _ = service.submit(dict(S27_JOB))
        service.drain()
        duplicate, _ = service.submit(dict(S27_JOB))
        # Finished at submit time: never queued, never simulated.
        assert duplicate.state == "done"
        assert duplicate.cache_hit
        assert service.queue.depth() == 0
        metrics = service.metrics_snapshot()
        assert metrics["jobs"]["simulated"] == 1
        assert metrics["cache"]["hits"] == 1
        assert service.result_bytes(duplicate.job_id) == service.result_bytes(
            first.job_id
        )

    def test_sharding_does_not_change_cache_identity(self, tmp_path):
        """jobs/shard_strategy cannot change the outcome, so a sharded
        duplicate of a single-process job is a cache hit."""
        service = make_service(tmp_path)
        service.submit(dict(S27_JOB))
        service.drain()
        duplicate, _ = service.submit(
            dict(S27_JOB, jobs=3, shard_strategy="level-balanced")
        )
        assert duplicate.cache_hit

    def test_in_flight_duplicates_coalesce(self, tmp_path):
        service = make_service(tmp_path)
        a, _ = service.submit(dict(S27_JOB))
        b, _ = service.submit(dict(S27_JOB))
        assert service.status(b.job_id).state == "queued"  # nothing cached yet
        service.drain()
        assert service.status(a.job_id).state == "done"
        assert service.status(b.job_id).state == "done"
        assert service.metrics_snapshot()["jobs"]["simulated"] == 1
        assert service.result_bytes(a.job_id) == service.result_bytes(b.job_id)

    def test_cache_disabled_resimulates(self, tmp_path):
        service = make_service(tmp_path, cache_results=False)
        service.submit(dict(S27_JOB))
        service.submit(dict(S27_JOB))
        service.drain()
        assert service.metrics_snapshot()["jobs"]["simulated"] == 2

    def test_wall_truncated_results_are_not_cached(self, tmp_path):
        service = make_service(tmp_path, max_seconds_per_job=0.0)
        record, _ = service.submit(dict(S27_JOB))
        service.drain()
        finished = service.status(record.job_id)
        assert finished.state == "done"
        assert json.loads(service.result_bytes(record.job_id))["truncated"]
        assert finished.cache_key not in service.cache


class TestBatching:
    def test_same_circuit_jobs_batch_together(self, tmp_path):
        service = make_service(tmp_path, max_batch=8, cache_results=False)
        for seed in range(4):
            service.submit(dict(S27_JOB, seed=seed))
        assert service.process_once() == 4
        metrics = service.metrics_snapshot()
        assert metrics["batch"]["max_size"] == 4
        assert all(
            record.batch_size == 4 for record in service.store.all_records()
        )

    def test_different_circuits_do_not_batch(self, tmp_path):
        service = make_service(tmp_path, max_batch=8, cache_results=False)
        service.submit(dict(S27_JOB, seed=1))
        service.submit({"circuit": "s298", "scale": 0.25, "random_patterns": 10})
        assert service.process_once() == 1
        assert service.process_once() == 1

    def test_max_batch_1_disables_coalescing(self, tmp_path):
        service = make_service(tmp_path, max_batch=1, cache_results=False)
        for seed in range(3):
            service.submit(dict(S27_JOB, seed=seed))
        assert service.process_once() == 1
        assert service.metrics_snapshot()["batch"]["max_size"] == 1

    def test_batched_results_identical_to_unbatched(self, tmp_path):
        batched = make_service(tmp_path / "a", max_batch=8, cache_results=False)
        unbatched = make_service(tmp_path / "b", max_batch=1, cache_results=False)
        ids = {}
        for service, label in ((batched, "a"), (unbatched, "b")):
            for seed in range(3):
                record, _ = service.submit(dict(S27_JOB, seed=seed))
                ids[(label, seed)] = record.job_id
            service.drain()
        for seed in range(3):
            assert batched.result_bytes(ids[("a", seed)]) == unbatched.result_bytes(
                ids[("b", seed)]
            )


class TestCancel:
    def test_cancel_queued_job(self, tmp_path):
        service = make_service(tmp_path)
        record, _ = service.submit(dict(S27_JOB))
        assert service.cancel(record.job_id)
        assert service.status(record.job_id).state == "cancelled"
        assert service.drain() == 0

    def test_cancel_finished_job_refused(self, tmp_path):
        service = make_service(tmp_path)
        record, _ = service.submit(dict(S27_JOB))
        service.drain()
        assert not service.cancel(record.job_id)
        assert service.status(record.job_id).state == "done"

    def test_cancel_unknown_job_refused(self, tmp_path):
        assert not make_service(tmp_path).cancel("job-999999")


class TestPersistence:
    def test_store_survives_restart(self, tmp_path):
        config = ServeConfig(state_dir=str(tmp_path / "state"), workers=0)
        service = FaultSimService(config)
        record, _ = service.submit(dict(S27_JOB))
        service.drain()
        blob = service.result_bytes(record.job_id)

        reborn = FaultSimService(config)
        assert reborn.recover() == 0  # done jobs stay done
        revived = reborn.status(record.job_id)
        assert revived.state == "done"
        assert reborn.result_bytes(record.job_id) == blob
        # The cache survived too: a duplicate still hits.
        duplicate, _ = reborn.submit(dict(S27_JOB))
        assert duplicate.cache_hit

    def test_recover_requeues_queued_jobs(self, tmp_path):
        config = ServeConfig(state_dir=str(tmp_path / "state"), workers=0)
        service = FaultSimService(config)
        record, _ = service.submit(dict(S27_JOB))
        # New process: the queue is empty but the record is durable.
        reborn = FaultSimService(config)
        assert reborn.recover() == 1
        assert reborn.drain() == 1
        assert reborn.status(record.job_id).state == "done"


class TestWorkers:
    def test_background_workers_drain_the_queue(self, tmp_path):
        import time

        service = make_service(tmp_path, workers=2)
        records = [service.submit(dict(S27_JOB, seed=seed))[0] for seed in range(4)]
        service.start()
        try:
            deadline = time.time() + 30
            while time.time() < deadline:
                states = {service.status(r.job_id).state for r in records}
                if states == {"done"}:
                    break
                time.sleep(0.05)
            assert {service.status(r.job_id).state for r in records} == {"done"}
        finally:
            service.stop()


class TestJobQueue:
    def test_priority_then_fifo(self):
        queue = JobQueue(capacity=8)
        queue.push("a", 0)
        queue.push("b", 2)
        queue.push("c", 2)
        queue.push("d", 1)
        assert [queue.pop(timeout=0) for _ in range(4)] == ["b", "c", "d", "a"]

    def test_bounded(self):
        queue = JobQueue(capacity=1)
        queue.push("a")
        with pytest.raises(QueueFull):
            queue.push("b")
        assert queue.pop(timeout=0) == "a"
        queue.push("b")  # capacity freed

    def test_cancel_frees_capacity(self):
        queue = JobQueue(capacity=1)
        queue.push("a")
        assert queue.cancel("a")
        assert not queue.cancel("a")  # already marked
        queue.push("b")
        assert queue.pop(timeout=0) == "b"
        assert queue.pop(timeout=0) is None

    def test_pop_if_takes_only_wanted(self):
        queue = JobQueue(capacity=8)
        for job_id in ("a", "b", "c"):
            queue.push(job_id)
        assert queue.pop_if(frozenset({"b"})) == "b"
        assert queue.pop_if(frozenset({"b"})) is None
        assert [queue.pop(timeout=0), queue.pop(timeout=0)] == ["a", "c"]


class TestResolver:
    def test_circuit_loads_are_memoized(self):
        resolver = SpecResolver(capacity=2)
        spec = JobSpec.from_payload({"circuit": "s27"})
        first = resolver.circuit_for(spec)
        assert resolver.circuit_for(spec) is first
        assert resolver.loads == 1

    def test_lru_evicts_beyond_capacity(self):
        resolver = SpecResolver(capacity=1)
        s27 = JobSpec.from_payload({"circuit": "s27"})
        s298 = JobSpec.from_payload({"circuit": "s298", "scale": 0.25})
        resolver.circuit_for(s27)
        resolver.circuit_for(s298)
        resolver.circuit_for(s27)
        assert resolver.loads == 3


class TestCacheKeyUnits:
    """Deterministic spot checks; the hypothesis suite fuzzes the rest."""

    def _key(self, payload):
        resolver = SpecResolver()
        spec = JobSpec.from_payload(payload)
        resolved = resolver.resolve(spec)
        return cache_key(spec, resolved.circuit, resolved.tests, resolved.faults)

    def test_key_is_stable(self, tmp_path):
        assert self._key(dict(S27_JOB)) == self._key(dict(S27_JOB))

    def test_scheduling_knobs_do_not_change_key(self):
        assert self._key(dict(S27_JOB)) == self._key(
            dict(S27_JOB, jobs=4, shard_strategy="work-stealing", priority=9)
        )

    def test_semantic_knobs_change_key(self):
        base = self._key(dict(S27_JOB))
        assert self._key(dict(S27_JOB, seed=8)) != base
        assert self._key(dict(S27_JOB, engine="csim")) != base
        assert self._key(dict(S27_JOB, max_cycles=10)) != base
        assert self._key(dict(S27_JOB, transition=True)) != base
