"""Fault-sharded parallel campaign runner: partition, merge, resilience.

The contract under test (see :mod:`repro.parallel.merge`): the merged
*outcome* — detected faults, detection cycles, potential detections,
coverage — is bit-identical to a single-process run for every shard
count, partition strategy and executor; at K=1 the whole result (work
counters and modelled memory included) is identical; and for K>1 the
aggregate counters are deterministic across executors.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.circuit.generate import random_circuit
from repro.circuit.library import load
from repro.faults.universe import stuck_at_universe
from repro.harness.runner import run_stuck_at, run_transition
from repro.parallel import (
    MultiprocessExecutor,
    SequentialExecutor,
    activity_weights,
    merge_results,
    run_parallel,
    shard_checkpoint_path,
    shard_faults,
)
from repro.parallel.sharding import STRATEGIES
from repro.patterns.random_gen import random_sequence
from repro.robust.budget import Budget
from repro.robust.checkpoint import CampaignInterrupted, CheckpointError


@pytest.fixture(scope="module")
def s298():
    return load("s298")


@pytest.fixture(scope="module")
def s298_tests(s298):
    return random_sequence(s298, 40, seed=5)


# ----------------------------------------------------------------------
# sharding strategies
# ----------------------------------------------------------------------


class TestSharding:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("jobs", [1, 2, 3, 7])
    def test_partition_is_exact(self, s298, strategy, jobs):
        universe = stuck_at_universe(s298)
        shards = shard_faults(s298, universe, jobs, strategy)
        merged = [fault for shard in shards for fault in shard]
        assert sorted(merged) == sorted(universe)
        assert len(set(merged)) == len(universe)
        assert all(shard for shard in shards)

    def test_round_robin_is_deterministic(self, s298):
        universe = stuck_at_universe(s298)
        first = shard_faults(s298, universe, 4, "round-robin")
        second = shard_faults(s298, universe, 4, "round-robin")
        assert first == second

    def test_level_balanced_spreads_weight(self, s298):
        universe = stuck_at_universe(s298)
        weights = activity_weights(s298)
        shards = shard_faults(s298, universe, 4, "level-balanced")
        loads = [sum(weights[f.gate] for f in shard) for shard in shards]
        # LPT guarantee: heaviest shard within 4/3 of the optimum's lower
        # bound (perfect split or the single heaviest fault).
        optimum = max(sum(loads) / len(loads), max(weights))
        assert max(loads) <= 4 / 3 * optimum + 1

    def test_work_stealing_overshards(self, s298):
        universe = stuck_at_universe(s298)
        shards = shard_faults(s298, universe, 2, "work-stealing", overshard=4)
        assert len(shards) > 2

    def test_more_jobs_than_faults(self, s298):
        universe = stuck_at_universe(s298)[:3]
        shards = shard_faults(s298, universe, 8, "round-robin")
        assert len(shards) == 3

    def test_empty_universe(self, s298):
        assert shard_faults(s298, [], 4, "round-robin") == [[]]

    def test_unknown_strategy_rejected(self, s298):
        with pytest.raises(ValueError, match="strategy"):
            shard_faults(s298, stuck_at_universe(s298), 2, "alphabetical")
        with pytest.raises(ValueError):
            shard_faults(s298, stuck_at_universe(s298), 0, "round-robin")


# ----------------------------------------------------------------------
# outcome identity: merged result == single-process result
# ----------------------------------------------------------------------


class TestOutcomeIdentity:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("jobs", [1, 2, 4, 7])
    def test_detections_identical_any_sharding(
        self, s298, s298_tests, strategy, jobs
    ):
        base = run_stuck_at(s298, s298_tests, "csim-MV")
        merged = run_parallel(
            s298,
            s298_tests,
            "csim-MV",
            jobs=jobs,
            shard_strategy=strategy,
            executor=SequentialExecutor(),
        )
        assert merged.detected == base.detected
        assert merged.potentially_detected == base.potentially_detected
        assert merged.num_faults == base.num_faults
        assert merged.coverage == base.coverage

    def test_k1_is_fully_identical(self, s298, s298_tests):
        base = run_stuck_at(s298, s298_tests, "csim-MV")
        merged = run_parallel(s298, s298_tests, "csim-MV", jobs=1)
        assert merged.detected == base.detected
        assert merged.counters == base.counters
        assert merged.memory == base.memory
        assert not merged.truncated

    @pytest.mark.parametrize("engine", ["csim", "csim-MV", "PROOFS"])
    def test_every_engine_shards(self, s298, s298_tests, engine):
        base = run_stuck_at(s298, s298_tests, engine)
        merged = run_parallel(
            s298, s298_tests, engine, jobs=3, executor=SequentialExecutor()
        )
        assert merged.detected == base.detected

    def test_transition_shards(self, s298, s298_tests):
        base = run_transition(s298, s298_tests)
        merged = run_parallel(
            s298,
            s298_tests,
            transition=True,
            jobs=3,
            executor=SequentialExecutor(),
        )
        assert merged.detected == base.detected
        assert merged.potentially_detected == base.potentially_detected

    def test_executors_agree_exactly(self, s298, s298_tests):
        """The multiprocessing pool and its in-process twin must produce
        the same merged result, counters and telemetry included."""
        kwargs = dict(jobs=2, shard_strategy="work-stealing", telemetry=True)
        seq = run_parallel(
            s298, s298_tests, "csim-MV", executor=SequentialExecutor(), **kwargs
        )
        mp = run_parallel(
            s298, s298_tests, "csim-MV", executor=MultiprocessExecutor(2), **kwargs
        )
        assert mp.detected == seq.detected
        assert mp.counters == seq.counters
        assert mp.memory == seq.memory
        assert mp.telemetry is not None
        assert mp.telemetry.cycles == seq.telemetry.cycles

    def test_explicit_fault_subset(self, s298, s298_tests):
        subset = stuck_at_universe(s298)[::3]
        base = run_stuck_at(s298, s298_tests, "csim-MV", faults=subset)
        merged = run_parallel(
            s298,
            s298_tests,
            "csim-MV",
            faults=subset,
            jobs=4,
            executor=SequentialExecutor(),
        )
        assert merged.detected == base.detected
        assert merged.num_faults == len(subset)

    def test_merged_telemetry_sums_per_cycle_work(self, s298, s298_tests):
        merged = run_parallel(
            s298,
            s298_tests,
            "csim-MV",
            jobs=2,
            telemetry=True,
            executor=SequentialExecutor(),
        )
        assert merged.telemetry is not None
        rows = merged.telemetry.cycles
        assert len(rows) == len(s298_tests.vectors)
        assert sum(r["fault_evaluations"] for r in rows) == (
            merged.counters.fault_evaluations
        )


class TestMerge:
    def test_merge_of_one_is_identity(self, s298, s298_tests):
        base = run_stuck_at(s298, s298_tests, "csim-MV")
        merged = merge_results([base])
        assert merged.detected == base.detected
        assert merged.counters == base.counters
        assert merged.truncation_reason == base.truncation_reason

    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_results([])

    def test_truncation_flag_propagates(self, s298, s298_tests):
        whole = run_stuck_at(s298, s298_tests, "csim-MV")
        clipped = run_stuck_at(
            s298, s298_tests, "csim-MV", budget=Budget(max_cycles=4)
        )
        merged = merge_results([whole, clipped])
        assert merged.truncated
        assert merged.truncation_reason.startswith("shard 1/2:")
        # The shared vector count is the one every shard completed.
        assert merged.num_vectors == clipped.num_vectors


# ----------------------------------------------------------------------
# hypothesis: partition invariance on adversarial circuits
# ----------------------------------------------------------------------


@st.composite
def parallel_case(draw):
    seed = draw(st.integers(0, 2**20))
    circuit = random_circuit(
        random.Random(seed),
        num_inputs=draw(st.integers(2, 4)),
        num_gates=draw(st.integers(5, 16)),
        num_dffs=draw(st.integers(0, 3)),
        num_outputs=2,
        name=f"par{seed}",
    )
    vec_seed = draw(st.integers(0, 2**20))
    tests = random_sequence(circuit, draw(st.integers(2, 10)), seed=vec_seed)
    return circuit, tests


class TestPartitionInvarianceProperty:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(case=parallel_case(), data=st.data())
    def test_any_k_matches_k1(self, case, data):
        circuit, tests = case
        base = run_parallel(circuit, tests, "csim-MV", jobs=1)
        for jobs in (2, 4, 7):
            strategy = data.draw(st.sampled_from(STRATEGIES), label=f"K={jobs}")
            merged = run_parallel(
                circuit,
                tests,
                "csim-MV",
                jobs=jobs,
                shard_strategy=strategy,
                executor=SequentialExecutor(),
            )
            assert merged.detected == base.detected
            assert merged.potentially_detected == base.potentially_detected
            assert merged.num_faults == base.num_faults
            assert merged.coverage == base.coverage


# ----------------------------------------------------------------------
# resilience: checkpoints, resume, budgets, interrupts
# ----------------------------------------------------------------------


class TestParallelResilience:
    def test_budget_breach_in_one_worker_truncates_merged(self, s298, s298_tests):
        merged = run_parallel(
            s298,
            s298_tests,
            "csim-MV",
            jobs=2,
            budget=Budget(max_cycles=5),
            executor=SequentialExecutor(),
        )
        assert merged.truncated
        assert merged.truncation_reason.startswith("shard ")
        assert "cycle budget" in merged.truncation_reason

    def test_kill_resume_bit_identical(self, s298, s298_tests, tmp_path):
        """Interrupt a sharded campaign after one shard, resume it, and
        diff against the uninterrupted run: detections, counters and
        memory must all match."""
        base_path = str(tmp_path / "campaign.ckpt")
        uninterrupted = run_parallel(
            s298, s298_tests, "csim-MV", jobs=4, executor=SequentialExecutor()
        )

        def bomb(index, result):
            raise KeyboardInterrupt

        with pytest.raises(CampaignInterrupted) as info:
            run_parallel(
                s298,
                s298_tests,
                "csim-MV",
                jobs=4,
                checkpoint_path=base_path,
                checkpoint_every=8,
                executor=SequentialExecutor(on_result=bomb),
            )
        # The resume hint names the campaign base path, not a shard file.
        assert info.value.checkpoint_path == base_path

        resumed = run_parallel(
            s298,
            s298_tests,
            "csim-MV",
            jobs=4,
            checkpoint_path=base_path,
            resume=True,
            executor=SequentialExecutor(),
        )
        assert resumed.detected == uninterrupted.detected
        assert resumed.counters == uninterrupted.counters
        assert resumed.memory == uninterrupted.memory

    def test_finished_shards_replay_from_checkpoint(self, s298, s298_tests, tmp_path):
        base_path = str(tmp_path / "campaign.ckpt")
        kwargs = dict(jobs=2, checkpoint_path=base_path, checkpoint_every=8)
        full = run_parallel(
            s298, s298_tests, "csim-MV", executor=SequentialExecutor(), **kwargs
        )
        assert (tmp_path / "campaign.ckpt.shard00-of-02").exists()
        replay = run_parallel(
            s298,
            s298_tests,
            "csim-MV",
            resume=True,
            executor=SequentialExecutor(),
            **kwargs,
        )
        assert replay.detected == full.detected
        assert replay.counters == full.counters

    def test_resume_under_different_sharding_refused(
        self, s298, s298_tests, tmp_path
    ):
        """A shard checkpoint is bound to its (strategy, index, total)
        position; resuming the same files under another strategy must be
        refused, not silently merged wrong."""
        base_path = str(tmp_path / "campaign.ckpt")
        run_parallel(
            s298,
            s298_tests,
            "csim-MV",
            jobs=2,
            shard_strategy="round-robin",
            checkpoint_path=base_path,
            executor=SequentialExecutor(),
        )
        with pytest.raises(CheckpointError):
            run_parallel(
                s298,
                s298_tests,
                "csim-MV",
                jobs=2,
                shard_strategy="level-balanced",
                checkpoint_path=base_path,
                resume=True,
                executor=SequentialExecutor(),
            )

    def test_resume_without_path_rejected(self, s298, s298_tests):
        with pytest.raises(ValueError, match="checkpoint"):
            run_parallel(s298, s298_tests, "csim-MV", jobs=2, resume=True)

    def test_shard_checkpoint_paths_are_distinct(self):
        paths = {shard_checkpoint_path("c.ckpt", i, 12) for i in range(12)}
        assert len(paths) == 12


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------


class TestParallelCli:
    def _coverage(self, text):
        import re

        match = re.search(r"(\d+/\d+ faults \([\d.]+%\) in \d+ vectors)", text)
        assert match, text
        return match.group(1)

    def test_jobs_matches_single_process(self, capsys):
        from repro.cli import main

        argv = ["simulate", "s27", "--random-patterns", "40", "--seed", "9"]
        assert main(argv) == 0
        single = self._coverage(capsys.readouterr().out)
        assert main(argv + ["--jobs", "2", "--shard-strategy", "work-stealing"]) == 0
        assert self._coverage(capsys.readouterr().out) == single

    def test_trace_with_jobs_writes_span_trace(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs.span import read_spans, stitch_trace, trace_ids

        trace_dir = tmp_path / "trace"
        assert (
            main(
                [
                    "simulate",
                    "s27",
                    "--random-patterns",
                    "10",
                    "--jobs",
                    "2",
                    "--trace",
                    str(trace_dir),
                ]
            )
            == 0
        )
        assert "span trace" in capsys.readouterr().err
        spans = read_spans(str(trace_dir))
        ids = trace_ids(spans)
        assert len(ids) == 1
        roots = stitch_trace(spans, ids[0])
        names = {node.name for root in roots for node, _ in root.walk()}
        assert any(name.startswith("shard ") for name in names)
        assert "merge" in names

    def test_bad_jobs_rejected(self, capsys):
        from repro.cli import main

        assert main(["simulate", "s27", "--jobs", "0"]) == 2

    def test_transition_jobs(self, capsys):
        from repro.cli import main

        argv = ["transition", "s27", "--random-patterns", "20", "--seed", "4"]
        assert main(argv) == 0
        single = self._coverage(capsys.readouterr().out)
        assert main(argv + ["--jobs", "2"]) == 0
        assert self._coverage(capsys.readouterr().out) == single


class TestParallelTables:
    def test_prefilled_report_is_byte_identical(self):
        from repro.harness.tables import all_tables

        serial = all_tables(scale=0.15, quick=True, deterministic=True)
        parallel = all_tables(scale=0.15, quick=True, deterministic=True, jobs=2)
        assert parallel == serial
