"""Synthetic benchmark generation and the circuit library."""

import pytest

from repro.circuit.bench import write_bench
from repro.circuit.generate import CircuitProfile, generate_circuit
from repro.circuit.library import (
    ISCAS89_PROFILES,
    TABLE3_CIRCUITS,
    available_circuits,
    load,
)
from repro.circuit.netlist import NetlistError
from repro.circuit.stats import circuit_stats
from repro.logic.tables import GateType


class TestGenerator:
    def test_deterministic_across_calls(self):
        profile = CircuitProfile("det", 5, 3, 4, 40)
        first = generate_circuit(profile)
        second = generate_circuit(profile)
        assert write_bench(first) == write_bench(second)

    def test_seed_changes_circuit(self):
        base = CircuitProfile("det", 5, 3, 4, 40, seed=1)
        other = CircuitProfile("det", 5, 3, 4, 40, seed=2)
        assert write_bench(generate_circuit(base)) != write_bench(
            generate_circuit(other)
        )

    def test_profile_counts_respected(self):
        profile = CircuitProfile("counts", 6, 4, 5, 60)
        circuit = generate_circuit(profile)
        assert len(circuit.inputs) == 6
        assert len(circuit.outputs) == 4
        assert len(circuit.dffs) == 5
        # NAND state mixers add a few gates beyond the budget.
        assert 60 <= circuit.num_combinational <= 60 + 5

    def test_depth_is_realistic(self):
        circuit = generate_circuit(CircuitProfile("depth", 5, 4, 6, 150))
        assert 4 <= circuit.num_levels <= 30

    def test_scaled_profile(self):
        profile = CircuitProfile("big", 30, 20, 100, 2000)
        small = profile.scaled(0.1)
        assert small.num_gates == 200
        assert small.num_dffs == 10
        assert profile.scaled(1.0) is profile

    def test_scaled_floors(self):
        profile = CircuitProfile("tiny", 3, 2, 2, 20)
        small = profile.scaled(0.01)
        assert small.num_inputs >= 2
        assert small.num_outputs >= 1
        assert small.num_gates >= 8

    def test_combinational_circuit_possible(self):
        profile = CircuitProfile("comb", 4, 2, 0, 20)
        circuit = generate_circuit(profile)
        assert not circuit.dffs

    def test_initializes_from_power_up(self):
        # The flip-flop mixers must pull the state out of all-X.
        from repro.logic.values import X
        from repro.patterns.random_gen import random_sequence
        from repro.sim.logicsim import LogicSimulator

        circuit = load("s298")
        sim = LogicSimulator(circuit)
        for vector in random_sequence(circuit, 50, seed=1):
            sim.step(vector)
        assert all(sim.values[index] != X for index in circuit.dffs)


class TestLibrary:
    def test_s27_is_real(self):
        circuit = load("s27")
        stats = circuit_stats(circuit)
        assert (stats.num_inputs, stats.num_outputs, stats.num_dffs) == (4, 1, 3)
        assert stats.num_gates == 10

    def test_profiles_cover_paper_tables(self):
        for name in TABLE3_CIRCUITS:
            assert name in ISCAS89_PROFILES

    def test_load_synthetic_matches_profile(self):
        circuit = load("s344")
        profile = ISCAS89_PROFILES["s344"]
        assert len(circuit.inputs) == profile.num_inputs
        assert len(circuit.dffs) == profile.num_dffs

    def test_load_scaled(self):
        full = load("s5378")
        small = load("s5378", scale=0.1)
        assert small.num_combinational < full.num_combinational / 5

    def test_unknown_name_rejected(self):
        with pytest.raises(NetlistError):
            load("s99999")

    def test_available_circuits_sorted_small_first(self):
        names = available_circuits()
        assert names[0] == "s27"
        sizes = [ISCAS89_PROFILES[name].num_gates for name in names[1:]]
        assert sizes == sorted(sizes)

    def test_load_from_path(self, tmp_path):
        path = tmp_path / "file.bench"
        path.write_text("INPUT(a)\nOUTPUT(g)\ng = NOT(a)\n")
        circuit = load(str(path))
        assert circuit.name == "file"


class TestStats:
    def test_row_formatting(self):
        stats = circuit_stats(load("s27"))
        row = stats.row()
        assert "s27" in row

    def test_line_count_includes_pins(self):
        circuit = load("s27")
        stats = circuit_stats(circuit)
        pins = sum(g.arity for g in circuit.gates if g.gtype is not GateType.INPUT)
        assert stats.num_lines == len(circuit.gates) + pins
