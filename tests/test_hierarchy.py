"""Hierarchical netlists, flattening, and instance-boundary macros."""


import pytest

from repro.baselines.serial import simulate_serial
from repro.circuit.hierarchy import HierarchicalBuilder, Module
from repro.circuit.macro import extract_macros
from repro.circuit.netlist import CircuitBuilder, NetlistError
from repro.concurrent.engine import ConcurrentFaultSimulator
from repro.concurrent.options import CSIM_V, SimOptions
from repro.faults.universe import stuck_at_universe
from repro.logic.tables import GateType

from repro.patterns.random_gen import random_sequence
from repro.sim.logicsim import LogicSimulator


def mux2_module():
    """2:1 MUX — reconvergent (select fans out), single output."""
    builder = CircuitBuilder("mux2")
    for name in ("a", "b", "sel"):
        builder.add_input(name)
    builder.add_gate("nsel", GateType.NOT, ["sel"])
    builder.add_gate("pa", GateType.AND, ["a", "nsel"])
    builder.add_gate("pb", GateType.AND, ["b", "sel"])
    builder.add_gate("y", GateType.OR, ["pa", "pb"])
    builder.set_output("y")
    return Module("mux2", builder.build())


def carry_module():
    """Full-adder carry: maj(a, b, c) — also reconvergent."""
    builder = CircuitBuilder("carry")
    for name in ("a", "b", "c"):
        builder.add_input(name)
    builder.add_gate("ab", GateType.AND, ["a", "b"])
    builder.add_gate("bc", GateType.AND, ["b", "c"])
    builder.add_gate("ca", GateType.AND, ["c", "a"])
    builder.add_gate("cout", GateType.OR, ["ab", "bc", "ca"])
    builder.set_output("cout")
    return Module("carry", builder.build())


def two_output_module():
    builder = CircuitBuilder("pair")
    builder.add_input("a")
    builder.add_gate("x", GateType.NOT, ["a"])
    builder.add_gate("y", GateType.BUF, ["a"])
    builder.set_output("x")
    builder.set_output("y")
    return Module("pair", builder.build())


def build_selector():
    """Two MUXes and a carry over four inputs plus a state bit."""
    top = HierarchicalBuilder("selector")
    for name in ("i0", "i1", "i2", "i3", "sel"):
        top.add_input(name)
    top.add_instance("m0", mux2_module(), {"a": "i0", "b": "i1", "sel": "sel"})
    top.add_instance("m1", mux2_module(), {"a": "i2", "b": "i3", "sel": "sel"})
    top.add_instance("cy", carry_module(), {"a": "m0", "b": "m1", "c": "q"})
    top.add_dff("q", "cy")
    top.set_output("cy")
    top.set_output("m1")
    return top.build()


class TestFlattening:
    def test_structure(self):
        hierarchy = build_selector()
        flat = hierarchy.flat
        assert flat.has_gate("m0/y")
        assert flat.has_gate("cy/cout")
        assert len(flat.dffs) == 1
        # MUX: 4 gates × 2 instances + carry: 4 gates = 12 combinational.
        assert flat.num_combinational == 12

    def test_flat_behaviour_matches_manual(self):
        """The flattened selector equals a hand-built equivalent."""
        hierarchy = build_selector()
        manual = CircuitBuilder("manual")
        for name in ("i0", "i1", "i2", "i3", "sel"):
            manual.add_input(name)
        manual.add_gate("nsel", GateType.NOT, ["sel"])
        manual.add_gate("m0", GateType.OR, ["m0a", "m0b"])
        manual.add_gate("m0a", GateType.AND, ["i0", "nsel"])
        manual.add_gate("m0b", GateType.AND, ["i1", "sel"])
        manual.add_gate("nsel2", GateType.NOT, ["sel"])
        manual.add_gate("m1", GateType.OR, ["m1a", "m1b"])
        manual.add_gate("m1a", GateType.AND, ["i2", "nsel2"])
        manual.add_gate("m1b", GateType.AND, ["i3", "sel"])
        manual.add_gate("ab", GateType.AND, ["m0", "m1"])
        manual.add_gate("bc", GateType.AND, ["m1", "q"])
        manual.add_gate("ca", GateType.AND, ["q", "m0"])
        manual.add_gate("cy", GateType.OR, ["ab", "bc", "ca"])
        manual.add_dff("q", "cy")
        manual.set_output("cy")
        manual.set_output("m1")
        reference = manual.build()

        flat_sim = LogicSimulator(hierarchy.flat)
        manual_sim = LogicSimulator(reference)
        for vector in random_sequence(reference, 30, seed=4):
            assert flat_sim.step(vector) == manual_sim.step(vector)

    def test_single_output_shorthand(self):
        hierarchy = build_selector()
        # 'm0' resolved to 'm0/y' when wiring the carry.
        carry_gate = hierarchy.flat.gate("cy/ab")
        sources = {hierarchy.flat.gates[i].name for i in carry_gate.fanin}
        assert "m0/y" in sources

    def test_dotted_reference(self):
        top = HierarchicalBuilder("dots")
        top.add_input("a")
        top.add_instance("p", two_output_module(), {"a": "a"})
        top.add_gate("g", GateType.AND, ["p.x", "p.y"])
        top.set_output("g")
        circuit = top.build().flat
        assert circuit.has_gate("p/x")

    def test_multi_output_requires_dot(self):
        top = HierarchicalBuilder("bad")
        top.add_input("a")
        top.add_instance("p", two_output_module(), {"a": "a"})
        with pytest.raises(NetlistError, match="use 'p"):
            top.add_gate("g", GateType.BUF, ["p"])

    def test_unbound_port_rejected(self):
        top = HierarchicalBuilder("bad")
        top.add_input("a")
        with pytest.raises(NetlistError, match="unbound ports"):
            top.add_instance("m", mux2_module(), {"a": "a"})

    def test_unknown_port_rejected(self):
        top = HierarchicalBuilder("bad")
        top.add_input("a")
        with pytest.raises(NetlistError, match="unknown ports"):
            top.add_instance(
                "m",
                mux2_module(),
                {"a": "a", "b": "a", "sel": "a", "zz": "a"},
            )

    def test_duplicate_instance_rejected(self):
        top = HierarchicalBuilder("bad")
        top.add_input("a")
        top.add_instance("m", mux2_module(), {"a": "a", "b": "a", "sel": "a"})
        with pytest.raises(NetlistError, match="defined twice"):
            top.add_instance("m", mux2_module(), {"a": "a", "b": "a", "sel": "a"})


class TestInstanceRegions:
    def test_eligible_instances_become_regions(self):
        hierarchy = build_selector()
        regions = hierarchy.instance_regions()
        # m0 feeds only the carry -> region; m1 is also a primary output
        # but that's its ROOT being observed, which is fine; cy -> region.
        roots = {hierarchy.flat.gates[r.root].name for r in regions}
        assert roots == {"m0/y", "m1/y", "cy/cout"}

    def test_region_pins_are_deduplicated(self):
        hierarchy = build_selector()
        regions = {
            hierarchy.flat.gates[r.root].name: r
            for r in hierarchy.instance_regions()
        }
        mux_region = regions["m0/y"]
        # MUX external sources: i0, i1, sel — sel once despite two loads.
        assert len(mux_region.pins) == 3

    def test_sequential_module_skipped(self):
        builder = CircuitBuilder("reg")
        builder.add_input("d")
        builder.add_dff("q", "d")
        builder.add_gate("y", GateType.BUF, ["q"])
        builder.set_output("y")
        register = Module("reg", builder.build())
        top = HierarchicalBuilder("t")
        top.add_input("d")
        top.add_instance("r", register, {"d": "d"})
        top.set_output("r")
        hierarchy = top.build()
        assert hierarchy.instance_regions() == []

    def test_macro_extraction_uses_instance_regions(self):
        hierarchy = build_selector()
        regions = hierarchy.instance_regions()
        macro = extract_macros(hierarchy.flat, max_inputs=4, preassigned=regions)
        for region in regions:
            root_name = hierarchy.flat.gates[region.root].name
            gate = macro.circuit.gate(root_name)
            assert gate.gtype is GateType.MACRO
            assert set(gate.macro_gates) >= {
                hierarchy.flat.gates[i].name for i in region.internal
            }

    def test_instance_macros_capture_reconvergence(self):
        """The whole point: a MUX (reconvergent select) becomes ONE macro;
        plain fanout-free growth must split it."""
        hierarchy = build_selector()
        flat = hierarchy.flat
        with_hierarchy = extract_macros(
            flat, max_inputs=4, preassigned=hierarchy.instance_regions()
        )
        without = extract_macros(flat, max_inputs=4)
        assert len(with_hierarchy.regions) < len(without.regions)


class TestHierarchicalSimulation:
    def test_macro_engine_matches_serial(self):
        hierarchy = build_selector()
        flat = hierarchy.flat
        faults = stuck_at_universe(flat)
        tests = random_sequence(flat, 40, seed=9)
        oracle = simulate_serial(flat, tests.vectors, faults)
        macro = extract_macros(
            flat, max_inputs=4, preassigned=hierarchy.instance_regions()
        )
        result = ConcurrentFaultSimulator(
            flat, faults, SimOptions(split_lists=True), macro=macro
        ).run(tests)
        assert result.detected == oracle.detected

    def test_hierarchical_macros_do_less_work(self):
        hierarchy = build_selector()
        flat = hierarchy.flat
        tests = random_sequence(flat, 60, seed=9)
        macro = extract_macros(
            flat, max_inputs=4, preassigned=hierarchy.instance_regions()
        )
        hierarchical = ConcurrentFaultSimulator(
            flat, None, SimOptions(split_lists=True), macro=macro
        ).run(tests)
        plain = ConcurrentFaultSimulator(flat, None, CSIM_V).run(tests)
        assert hierarchical.detected == plain.detected
        assert (
            hierarchical.counters.good_evaluations
            <= plain.counters.good_evaluations
        )

    def test_wrong_circuit_rejected(self):
        hierarchy = build_selector()
        other = build_selector()
        macro = extract_macros(hierarchy.flat, preassigned=hierarchy.instance_regions())
        with pytest.raises(ValueError, match="different circuit"):
            ConcurrentFaultSimulator(other.flat, macro=macro)
