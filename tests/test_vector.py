"""Vector engine (``vsim``) tests: packing, scheduler, cross-validation,
harness integration, checkpointing, and the ladder's fast rung.

The pattern-parallel kernel reuses the serial-oracle cross-validation
discipline of every other engine, plus vector-specific invariants: word
width and axis choice never change detection outcomes, the numpy plane
is bit-identical to the scalar word path (sub-plane eviction included),
and a failing ``vsim`` rung degrades to ``csim-MV`` under the ladder's
serial-oracle audit.
"""

import random

import pytest

from tests.conftest import make_circuit

from repro.baselines.serial import simulate_serial
from repro.faults.universe import stuck_at_universe
from repro.harness.runner import (
    ENGINE_NAMES,
    WORD_ENGINES,
    make_stuck_at_simulator,
    run_stuck_at,
)
from repro.logic.tables import GateType, evaluate
from repro.logic.values import ONE, VALUES, X, ZERO
from repro.patterns.random_gen import random_sequence
from repro.vector import plane
from repro.vector.kernel import ENGINE_NAME, VectorFaultSimulator
from repro.vector.packing import (
    MIN_WORD_WIDTH,
    broadcast_word,
    evaluate_gate_word,
    get_slot,
    pack_values,
    set_slot,
    unpack_values,
    validate_word_width,
)
from repro.vector.scheduler import (
    AXIS_MODES,
    MIN_PATTERN_DEPTH,
    AxisScheduler,
    predict_axes,
)

needs_numpy = pytest.mark.skipif(
    not plane.available(), reason="numpy not installed"
)


def _instance(seed, x_probability=0.0, **overrides):
    circuit = make_circuit(seed, **overrides)
    rng = random.Random(seed * 13 + 1)
    tests = random_sequence(
        circuit, rng.randint(8, 30), seed=seed * 7 + 1,
        x_probability=x_probability,
    )
    return circuit, stuck_at_universe(circuit), tests


def _run_vsim(circuit, faults, tests, **kwargs):
    return VectorFaultSimulator(circuit, faults, **kwargs).run(tests)


def _assert_identical(reference, candidate, label=""):
    assert candidate.detected == reference.detected, label
    assert candidate.potentially_detected == reference.potentially_detected, label


class TestPacking:
    @pytest.mark.parametrize("width", [0, 1, 3, 8, 64, 256])
    def test_round_trip(self, width):
        rng = random.Random(width)
        values = [rng.choice(VALUES) for _ in range(width)]
        ones, xs = pack_values(values)
        assert ones & xs == 0
        assert unpack_values(ones, xs, width) == values

    def test_x_dense_round_trip(self):
        values = [X] * 200
        values[7] = ONE
        values[150] = ZERO
        ones, xs = pack_values(values)
        assert unpack_values(ones, xs, 200) == values
        assert xs.bit_count() == 198

    def test_pack_rejects_garbage(self):
        with pytest.raises(ValueError, match="slot 1"):
            pack_values([ONE, 7])

    def test_slot_accessors(self):
        ones, xs = pack_values([ZERO, ONE, X])
        assert [get_slot(ones, xs, s) for s in range(3)] == [ZERO, ONE, X]
        ones, xs = set_slot(ones, xs, 0, X)
        ones, xs = set_slot(ones, xs, 1, ZERO)
        assert unpack_values(ones, xs, 3) == [X, ZERO, X]

    @pytest.mark.parametrize("value,expected", [
        (ZERO, (0, 0)), (ONE, (0b1111, 0)), (X, (0, 0b1111)),
    ])
    def test_broadcast_word(self, value, expected):
        assert broadcast_word(value, 0b1111) == expected

    @pytest.mark.parametrize(
        "gtype",
        [GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
         GateType.XOR, GateType.XNOR],
    )
    def test_two_input_gates_match_tables(self, gtype):
        pairs = [(a, b) for a in VALUES for b in VALUES]
        mask = (1 << len(pairs)) - 1
        left = pack_values([a for a, _ in pairs])
        right = pack_values([b for _, b in pairs])
        ones, xs = evaluate_gate_word(gtype, [left, right], mask)
        expected = [evaluate(gtype, pair) for pair in pairs]
        assert unpack_values(ones, xs, len(pairs)) == expected

    @pytest.mark.parametrize("gtype", [GateType.BUF, GateType.NOT])
    def test_unary_gates_match_tables(self, gtype):
        word = pack_values(VALUES)
        ones, xs = evaluate_gate_word(gtype, [word], 0b111)
        assert unpack_values(ones, xs, 3) == [evaluate(gtype, (v,)) for v in VALUES]

    def test_macro_rejected(self):
        with pytest.raises(ValueError, match="MACRO"):
            evaluate_gate_word(GateType.MACRO, [], 1)

    @pytest.mark.parametrize("width", [8, 16, 32, 64, 128, 1024])
    def test_validate_accepts_powers_of_two(self, width):
        assert validate_word_width(width) == width

    @pytest.mark.parametrize(
        "width", [0, -8, 1, 4, MIN_WORD_WIDTH - 1, 12, 24, 96, "64", 64.0,
                  True, None],
    )
    def test_validate_rejects_nonsense(self, width):
        with pytest.raises(ValueError):
            validate_word_width(width)


class TestScheduler:
    def test_fixed_modes_never_deviate(self):
        for mode in ("fault", "pattern"):
            scheduler = AxisScheduler(64, mode=mode)
            for live in (0, 1, 1000):
                assert scheduler.choose(1, live, 500).axis == mode

    def test_scalar_crossover(self):
        scheduler = AxisScheduler(64)
        assert scheduler.choose(1, 31, 500).axis == "pattern"
        assert scheduler.choose(1, 32, 500).axis == "fault"

    def test_dense_crossover_flips(self):
        scheduler = AxisScheduler(64, dense=True)
        assert scheduler.choose(1, 32, 500).axis == "pattern"
        assert scheduler.choose(1, 31, 500).axis == "fault"

    def test_shallow_tail_stays_fault_axis(self):
        scheduler = AxisScheduler(64, dense=True)
        assert scheduler.choose(1, 1000, MIN_PATTERN_DEPTH - 1).axis == "fault"

    def test_no_live_faults_is_fault_axis(self):
        assert AxisScheduler(64).choose(1, 0, 500).axis == "fault"

    def test_explicit_crossover_override(self):
        scheduler = AxisScheduler(64, crossover=5)
        assert scheduler.choose(1, 4, 500).axis == "pattern"
        assert scheduler.choose(1, 5, 500).axis == "fault"

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError, match="axis mode"):
            AxisScheduler(64, mode="diagonal")
        with pytest.raises(ValueError, match="word width"):
            AxisScheduler(0)

    def test_predict_axes_shard_mix(self):
        mix = predict_axes([500, 10, 3], depth=200, word_width=64)
        assert mix == ["fault", "pattern", "pattern"]
        dense_mix = predict_axes([500, 10, 3], depth=200, word_width=64,
                                 dense=True)
        assert dense_mix == ["pattern", "fault", "fault"]


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_serial_and_concurrent(self, seed):
        circuit, faults, tests = _instance(seed)
        oracle = simulate_serial(circuit, tests.vectors, faults)
        reference = run_stuck_at(circuit, tests, "csim-MV", faults)
        result = _run_vsim(circuit, faults, tests, word_width=8,
                           use_numpy=False)
        assert result.detected == oracle.detected
        _assert_identical(reference, result)

    @pytest.mark.parametrize("width", [1, 2, 8, 32, 64, 256])
    def test_word_width_irrelevant(self, width):
        circuit, faults, tests = _instance(5)
        reference = run_stuck_at(circuit, tests, "csim-MV", faults)
        result = _run_vsim(circuit, faults, tests, word_width=width,
                           use_numpy=False)
        _assert_identical(reference, result, f"width={width}")

    @pytest.mark.parametrize("axis", AXIS_MODES)
    def test_axis_mode_irrelevant(self, axis):
        circuit, faults, tests = _instance(3)
        reference = run_stuck_at(circuit, tests, "csim-MV", faults)
        result = _run_vsim(circuit, faults, tests, word_width=8,
                           axis_mode=axis, use_numpy=False)
        _assert_identical(reference, result, f"axis={axis}")

    def test_x_dense_patterns(self):
        circuit, faults, tests = _instance(9, x_probability=0.4)
        reference = run_stuck_at(circuit, tests, "csim-MV", faults)
        for use_numpy in (False, True) if plane.available() else (False,):
            result = _run_vsim(circuit, faults, tests, word_width=16,
                               axis_mode="pattern", use_numpy=use_numpy)
            _assert_identical(reference, result, f"numpy={use_numpy}")

    def test_s27_full_agreement(self, s27, s27_tests):
        faults = stuck_at_universe(s27)
        reference = run_stuck_at(s27, s27_tests, "csim-MV", faults)
        result = _run_vsim(s27, faults, s27_tests, word_width=16)
        _assert_identical(reference, result)
        assert result.engine == ENGINE_NAME

    @needs_numpy
    @pytest.mark.parametrize("seed", range(6))
    def test_plane_matches_scalar(self, seed):
        circuit, faults, tests = _instance(seed, num_dffs=3)
        scalar = _run_vsim(circuit, faults, tests, word_width=16,
                           axis_mode="pattern", use_numpy=False)
        dense = _run_vsim(circuit, faults, tests, word_width=16,
                          axis_mode="pattern", use_numpy=True)
        _assert_identical(scalar, dense)
        assert dense.counters.fault_evaluations > 0

    @needs_numpy
    @pytest.mark.parametrize("width", [1, 8, 64])
    def test_plane_widths(self, width):
        circuit, faults, tests = _instance(5)
        reference = run_stuck_at(circuit, tests, "csim-MV", faults)
        result = _run_vsim(circuit, faults, tests, word_width=width,
                           axis_mode="pattern", use_numpy=True)
        _assert_identical(reference, result, f"width={width}")

    @needs_numpy
    def test_plane_width_beyond_uint64_rejected(self):
        circuit, faults, tests = _instance(1)
        with pytest.raises(ValueError, match="uint64"):
            VectorFaultSimulator(circuit, faults, word_width=128,
                                 use_numpy=True)

    def test_numpy_default_resolves_to_availability(self):
        circuit, faults, _ = _instance(1)
        auto = VectorFaultSimulator(circuit, faults, word_width=64)
        assert auto.use_numpy == plane.available()
        wide = VectorFaultSimulator(circuit, faults, word_width=128)
        assert wide.use_numpy is False

    @needs_numpy
    def test_sub_plane_eviction_is_exact(self, monkeypatch):
        """Force the divergent-row eviction path on every fix-up pass."""
        monkeypatch.setattr(plane, "EVICT_AFTER_PASSES", 1)
        for seed in (2, 4, 6):
            circuit, faults, tests = _instance(seed, num_dffs=4,
                                               num_gates=25)
            reference = run_stuck_at(circuit, tests, "csim-MV", faults)
            result = _run_vsim(circuit, faults, tests, word_width=16,
                               axis_mode="pattern", use_numpy=True)
            _assert_identical(reference, result, f"seed={seed}")

    @needs_numpy
    def test_feedback_heavy_circuit_on_plane(self):
        from repro.circuit.library import load

        circuit = load("s526")
        faults = stuck_at_universe(circuit)
        tests = random_sequence(circuit, 128, seed=11)
        reference = run_stuck_at(circuit, tests, "csim-MV", faults)
        result = _run_vsim(circuit, faults, tests, word_width=64,
                           axis_mode="pattern", use_numpy=True)
        _assert_identical(reference, result)


class TestHarnessIntegration:
    def test_engine_registered(self):
        assert ENGINE_NAME in ENGINE_NAMES
        assert ENGINE_NAME in WORD_ENGINES

    def test_make_simulator_passes_width(self, s27):
        simulator = make_stuck_at_simulator(s27, "vsim", word_width=16)
        assert isinstance(simulator, VectorFaultSimulator)
        assert simulator.word_width == 16

    def test_run_records_axis_windows(self, s27, s27_tests):
        faults = stuck_at_universe(s27)
        result = run_stuck_at(s27, s27_tests, "vsim", faults, word_width=16)
        assert result.axis_windows
        assert sum(result.axis_windows.values()) > 0
        assert set(result.axis_windows) <= {"fault", "pattern"}

    def test_fixed_axes_report_their_axis(self, s27, s27_tests):
        faults = stuck_at_universe(s27)
        for axis in ("fault", "pattern"):
            result = run_stuck_at(
                s27, s27_tests, "vsim", faults, word_width=16, axis_mode=axis
            )
            assert set(result.axis_windows) == {axis}

    def test_parallel_shards_bit_identical(self, s27, s27_tests):
        faults = stuck_at_universe(s27)
        single = run_stuck_at(s27, s27_tests, "vsim", faults, word_width=16)
        sharded = run_stuck_at(
            s27, s27_tests, "vsim", faults, word_width=16, jobs=2
        )
        _assert_identical(single, sharded)
        assert sharded.axis_windows
        assert sum(sharded.axis_windows.values()) >= sum(
            single.axis_windows.values()
        )

    def test_checkpoint_resume_bit_identical(self, tmp_path, s27, s27_tests):
        from repro.robust import Budget, run_checkpointed

        path = str(tmp_path / "vector.ckpt")
        reference = run_checkpointed(s27, s27_tests, "vsim", word_width=16)
        partial = run_checkpointed(
            s27, s27_tests, "vsim", word_width=16, checkpoint_path=path,
            budget=Budget(max_cycles=len(s27_tests.vectors) // 3),
        )
        assert partial.truncated
        resumed = run_checkpointed(
            s27, s27_tests, "vsim", word_width=16, checkpoint_path=path,
            resume=True,
        )
        _assert_identical(reference, resumed)
        assert resumed.counters.cycles == len(s27_tests.vectors)


class TestLadderFastRung:
    def test_clean_vsim_rung_no_fallbacks(self, s27, s27_tests):
        from repro.robust import VECTOR_LADDER, run_with_ladder

        reference = run_stuck_at(s27, s27_tests, "csim-MV")
        result = run_with_ladder(s27, s27_tests, ladder=VECTOR_LADDER)
        assert result.fallbacks == []
        assert result.engine == ENGINE_NAME
        assert result.detected == reference.detected

    def test_crashing_vsim_degrades_to_csim_mv(self, s27, s27_tests):
        from repro.robust import VECTOR_LADDER, run_with_ladder

        class Exploding:
            faults = []

            def run(self, tests, budget=None):
                raise RuntimeError("vector kernel exploded")

        def factory(engine, circuit, faults, tracer):
            return Exploding() if engine == "vsim" else None

        reference = run_stuck_at(s27, s27_tests, "csim-MV")
        result = run_with_ladder(
            s27, s27_tests, ladder=VECTOR_LADDER, simulator_factory=factory
        )
        assert result.detected == reference.detected
        assert [f["engine"] for f in result.fallbacks] == ["vsim"]
        assert [f["to"] for f in result.fallbacks] == ["csim-MV"]
        assert "vector kernel exploded" in result.fallbacks[0]["reason"]
        assert "[degraded: vsim -> csim-MV]" in result.summary()

    def test_lying_vsim_caught_by_oracle_audit(self, s27, s27_tests):
        """A rung that *completes* with wrong detections must not survive
        the serial spot-check: bit-identity is restored one rung down."""
        from repro.robust import VECTOR_LADDER, run_with_ladder

        class Lying(VectorFaultSimulator):
            def run(self, tests, budget=None):
                result = super().run(tests, budget=budget)
                fault = next(iter(result.detected))
                result.detected[fault] += 1  # off-by-one detection cycle
                return result

        def factory(engine, circuit, faults, tracer):
            if engine == "vsim":
                return Lying(circuit, faults, word_width=16, tracer=tracer)
            return None

        reference = run_stuck_at(s27, s27_tests, "csim-MV")
        result = run_with_ladder(
            s27, s27_tests, ladder=VECTOR_LADDER, simulator_factory=factory,
            spot_check_sample=10**6,
        )
        assert result.detected == reference.detected
        assert [f["to"] for f in result.fallbacks] == ["csim-MV"]
        assert "oracle disagreement" in result.fallbacks[0]["reason"]


class TestWordWidthOption:
    def test_cli_rejects_bad_width(self, capsys):
        from repro.cli import main

        assert main(["simulate", "s27", "--engine", "vsim",
                     "--random-patterns", "10", "--word-width", "48"]) == 2
        assert "power of two" in capsys.readouterr().err

    def test_cli_rejects_width_on_non_word_engine(self, capsys):
        from repro.cli import main

        assert main(["simulate", "s27", "--engine", "csim-MV",
                     "--random-patterns", "10", "--word-width", "64"]) == 2
        assert "word-packed engines" in capsys.readouterr().err

    @pytest.mark.parametrize("engine", WORD_ENGINES)
    def test_cli_accepts_width_on_word_engines(self, engine, capsys):
        from repro.cli import main

        assert main(["simulate", "s27", "--engine", engine,
                     "--random-patterns", "20", "--word-width", "16"]) == 0
        assert engine in capsys.readouterr().out

    def test_spec_validates_width(self):
        from repro.serve.spec import JobSpec

        payload = {
            "circuit": "s27",
            "random_patterns": 8,
            "seed": 1,
            "engine": "vsim",
            "word_width": 48,
        }
        with pytest.raises(ValueError, match="power of two"):
            JobSpec.from_payload(payload)
        payload["word_width"] = 64
        assert JobSpec.from_payload(payload).word_width == 64
