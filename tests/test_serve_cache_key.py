"""Property tests for the content-addressed result cache.

The cache key must separate everything that can change a simulation's
outcome — netlist text, vector content *and order* (the circuits are
sequential), the fault universe, the engine options — while ignoring
scheduling knobs that cannot.  Hypothesis drives the separations; the
byte-identity half checks that whatever bytes go into the cache come back
exactly, so a hit returns the first run's document verbatim.
"""

import string

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.circuit.library import S27_BENCH, load
from repro.faults.universe import stuck_at_universe
from repro.patterns.random_gen import random_sequence
from repro.patterns.vectors import TestSequence
from repro.serve import ResultCache, cache_key
from repro.serve.spec import JobSpec, SpecResolver

RELAXED = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

CIRCUIT = load("s27")
FAULTS = list(stuck_at_universe(CIRCUIT))
NUM_INPUTS = len(CIRCUIT.inputs)


def key_for(spec, tests=None, faults=None):
    if tests is None:
        tests = random_sequence(CIRCUIT, 8, seed=spec.seed)
    return cache_key(spec, CIRCUIT, tests, FAULTS if faults is None else faults)


def sequence_of(rows):
    return TestSequence(NUM_INPUTS, [tuple(row) for row in rows])


values = st.sampled_from((0, 1, 2))  # ZERO, ONE, X
vectors = st.lists(
    st.tuples(*[values] * NUM_INPUTS), min_size=2, max_size=6
)


class TestKeySeparations:
    @RELAXED
    @given(st.text(alphabet=string.printable, min_size=1, max_size=12))
    def test_netlist_text_change_changes_key(self, suffix):
        base = JobSpec.from_payload({"netlist": S27_BENCH})
        changed = JobSpec.from_payload({"netlist": S27_BENCH + "#" + suffix + "\n"})
        tests = random_sequence(CIRCUIT, 8, seed=1)
        assert key_for(base, tests) != key_for(changed, tests)

    @RELAXED
    @given(vectors, st.data())
    def test_vector_order_changes_key(self, rows, data):
        permutation = data.draw(st.permutations(list(range(len(rows)))))
        reordered = [rows[index] for index in permutation]
        spec = JobSpec.from_payload({"circuit": "s27"})
        original_key = key_for(spec, sequence_of(rows))
        reordered_key = key_for(spec, sequence_of(reordered))
        if reordered == list(rows):
            assert reordered_key == original_key
        else:
            assert reordered_key != original_key

    @RELAXED
    @given(vectors, st.tuples(*[values] * NUM_INPUTS))
    def test_vector_content_changes_key(self, rows, extra):
        spec = JobSpec.from_payload({"circuit": "s27"})
        grown = list(rows) + [extra]
        assert key_for(spec, sequence_of(rows)) != key_for(spec, sequence_of(grown))

    @RELAXED
    @given(st.data())
    def test_fault_universe_changes_key(self, data):
        dropped = data.draw(
            st.lists(
                st.sampled_from(range(len(FAULTS))),
                min_size=1,
                max_size=len(FAULTS),
                unique=True,
            )
        )
        subset = [fault for index, fault in enumerate(FAULTS) if index not in set(dropped)]
        spec = JobSpec.from_payload({"circuit": "s27"})
        tests = random_sequence(CIRCUIT, 8, seed=1)
        assert key_for(spec, tests) != key_for(spec, tests, faults=subset)

    @RELAXED
    @given(
        st.sampled_from(("csim", "csim-V", "csim-M", "csim-MV", "PROOFS", "serial")),
        st.sampled_from(("csim", "csim-V", "csim-M", "csim-MV", "PROOFS", "serial")),
    )
    def test_engine_option_separates_iff_different(self, engine_a, engine_b):
        spec_a = JobSpec.from_payload({"circuit": "s27", "engine": engine_a})
        spec_b = JobSpec.from_payload({"circuit": "s27", "engine": engine_b})
        tests = random_sequence(CIRCUIT, 8, seed=1)
        if engine_a == engine_b:
            assert key_for(spec_a, tests) == key_for(spec_b, tests)
        else:
            assert key_for(spec_a, tests) != key_for(spec_b, tests)

    @RELAXED
    @given(st.integers(min_value=1, max_value=64))
    def test_max_cycles_changes_key(self, max_cycles):
        base = JobSpec.from_payload({"circuit": "s27"})
        capped = JobSpec.from_payload({"circuit": "s27", "max_cycles": max_cycles})
        tests = random_sequence(CIRCUIT, 8, seed=1)
        assert key_for(base, tests) != key_for(capped, tests)

    @RELAXED
    @given(
        st.integers(min_value=1, max_value=8),
        st.sampled_from(("round-robin", "level-balanced", "work-stealing")),
        st.integers(min_value=-5, max_value=5),
    )
    def test_scheduling_knobs_never_change_key(self, jobs, strategy, priority):
        base = JobSpec.from_payload({"circuit": "s27"})
        scheduled = JobSpec.from_payload(
            {
                "circuit": "s27",
                "jobs": jobs,
                "shard_strategy": strategy,
                "priority": priority,
                "idempotency_key": "whatever",
            }
        )
        tests = random_sequence(CIRCUIT, 8, seed=1)
        assert key_for(base, tests) == key_for(scheduled, tests)


class TestByteIdentity:
    @RELAXED
    @given(blob=st.binary(min_size=1, max_size=4096))
    def test_cache_roundtrip_is_byte_exact(self, tmp_path_factory, blob):
        cache = ResultCache(str(tmp_path_factory.mktemp("cache")))
        key = "k" * 64
        cache.put(key, blob)
        assert cache.get(key) == blob
        assert key in cache

    @RELAXED
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_duplicate_specs_share_a_key(self, seed):
        resolver = SpecResolver()
        payload = {"circuit": "s27", "random_patterns": 8, "seed": seed}
        keys = set()
        for _ in range(2):
            spec = JobSpec.from_payload(dict(payload))
            resolved = resolver.resolve(spec)
            keys.add(cache_key(spec, resolved.circuit, resolved.tests, resolved.faults))
        assert len(keys) == 1
