"""Harness: runners, engine comparison consistency, table drivers."""

import pytest

from repro.harness.reporting import format_table
from repro.harness.runner import (
    ENGINE_NAMES,
    compare_engines,
    run_stuck_at,
    run_transition,
    workload_circuit,
    workload_tests,
)
from repro.harness import tables
from repro.patterns.random_gen import random_sequence


class TestRunner:
    def test_every_engine_runs(self, s27):
        tests = random_sequence(s27, 15, seed=3)
        for engine in ENGINE_NAMES:
            result = run_stuck_at(s27, tests, engine)
            assert result.num_vectors == 15

    def test_unknown_engine_rejected(self, s27):
        with pytest.raises(ValueError, match="unknown engine"):
            run_stuck_at(s27, random_sequence(s27, 2, seed=1), "magic")

    def test_compare_engines_consistent(self, s27):
        tests = random_sequence(s27, 20, seed=3)
        results = compare_engines(s27, tests)
        assert len({r.num_detected for r in results}) == 1

    def test_transition_runner(self, s27):
        tests = random_sequence(s27, 10, seed=3)
        concurrent = run_transition(s27, tests)
        serial = run_transition(s27, tests, serial=True)
        assert concurrent.detected == serial.detected

    def test_workload_caching(self):
        first = workload_circuit("s298", 0.2)
        second = workload_circuit("s298", 0.2)
        assert first is second
        t1 = workload_tests("s298", 0.2, "deterministic")
        t2 = workload_tests("s298", 0.2, "deterministic")
        assert t1.vectors == t2.vectors


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "count"],
            [("alpha", 1), ("b", 123456)],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        assert "alpha" in lines[3]
        # Integers are right-aligned: both rows end at the same column.
        assert lines[3].rstrip().endswith("1")
        assert lines[4].rstrip().endswith("123456")
        assert len(lines[3].rstrip()) == len(lines[4].rstrip())

    def test_format_table_floats(self):
        text = format_table(["v"], [(0.1234,), (12.3456,), (1234.5,)])
        assert "0.123" in text
        assert "12.35" in text
        assert "1235" in text or "1234" in text

    def test_accepts_generators(self):
        text = format_table(["a"], ((str(i),) for i in range(3)))
        assert "2" in text


class TestTableDrivers:
    """Each table driver runs end-to-end on a tiny scaled workload."""

    SCALE = 0.12

    def test_table2(self):
        rows, text = tables.table2(("s298",), scale=self.SCALE)
        assert rows[0]["circuit"] == "s298"
        assert rows[0]["faults"] > 0
        assert "Table 2" in text

    def test_table3_shapes(self):
        rows, text = tables.table3(("s298",), scale=self.SCALE)
        row = rows[0]
        assert row["csim_cpu"] > 0
        assert row["csim-MV_mem"] > 0
        assert "PROOFS" in text

    def test_table4(self):
        rows, text = tables.table4(("s298",), scale=self.SCALE)
        assert rows[0]["coverage"] >= 0
        assert "Table 4" in text

    def test_table5_pattern_sweep(self):
        rows, text = tables.table5(scale=0.01, pattern_counts=(20, 40))
        assert [row["patterns"] for row in rows] == [20, 40]
        assert "Table 5" in text

    def test_table6(self):
        rows, text = tables.table6(("s298",), scale=self.SCALE)
        row = rows[0]
        assert row["faults"] > 0
        assert 0 <= row["coverage"] <= 100
        assert "Table 6" in text
