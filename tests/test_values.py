"""Unit tests for the three-valued logic domain."""

import pytest

from repro.logic.values import (
    ONE,
    VALUES,
    X,
    ZERO,
    invert,
    is_binary,
    value_from_char,
    value_to_char,
)


class TestValueCodes:
    def test_values_are_distinct_small_ints(self):
        assert sorted(VALUES) == [0, 1, 2]

    def test_codes_fit_two_bits(self):
        for value in VALUES:
            assert 0 <= value < 4

    def test_zero_one_are_their_own_codes(self):
        # The engines rely on ZERO/ONE doubling as arithmetic 0/1.
        assert ZERO == 0
        assert ONE == 1


class TestIsBinary:
    def test_binary_values(self):
        assert is_binary(ZERO)
        assert is_binary(ONE)

    def test_x_is_not_binary(self):
        assert not is_binary(X)


class TestInvert:
    def test_invert_zero(self):
        assert invert(ZERO) == ONE

    def test_invert_one(self):
        assert invert(ONE) == ZERO

    def test_invert_x(self):
        assert invert(X) == X

    def test_involution(self):
        for value in VALUES:
            assert invert(invert(value)) == value


class TestCharConversion:
    @pytest.mark.parametrize(
        "char,value",
        [("0", ZERO), ("1", ONE), ("x", X), ("X", X), ("u", X), ("U", X), ("-", X)],
    )
    def test_from_char(self, char, value):
        assert value_from_char(char) == value

    def test_from_char_rejects_garbage(self):
        with pytest.raises(ValueError):
            value_from_char("2")
        with pytest.raises(ValueError):
            value_from_char("")

    def test_to_char_roundtrip(self):
        for value in VALUES:
            assert value_from_char(value_to_char(value)) == value

    def test_to_char_rejects_non_value(self):
        with pytest.raises(ValueError):
            value_to_char(3)
