"""The fault-tolerant execution plane: leases, retries, deadlines, drain.

The headline scenario is the mid-batch worker kill: a batch of coalesced
queue-mates is claimed (every member leased), the worker dies on the head
job, and — without any service restart — the reaper notices the expired
leases, re-queues victim and stranded mates alike, and the retries resume
from checkpoints to results bit-identical to uninterrupted runs.

Around it: transient failures retry with backoff until the attempt budget
dead-letters them (and ``retry_job`` resurrects them), permanent failures
fail fast on attempt 1, per-job deadlines produce the truncated-result
contract and skip the cache, and a draining service refuses submissions
while finishing what it holds.
"""

import json
import threading
import time

import pytest

from repro.circuit.library import load
from repro.concurrent.engine import ConcurrentFaultSimulator
from repro.harness.runner import run_stuck_at
from repro.obs import parse_prometheus_text, render_prometheus
from repro.patterns.random_gen import random_sequence
from repro.robust.chaos import ChaosError, step_bomb
from repro.serve import FaultSimService, ServeConfig, serialize_result
from repro.serve.service import ServiceDraining, classify_failure
from repro.serve.spec import SpecError
from repro.serve.store import ERROR_MAX_CHARS, JobRecord

JOB = {"circuit": "s27", "random_patterns": 40, "seed": 5}


def make_service(tmp_path, name="state", **overrides):
    overrides.setdefault("workers", 0)
    overrides.setdefault("checkpoint_every", 4)
    overrides.setdefault("lease_ttl", 0.05)
    overrides.setdefault("retry_jitter", 0.0)
    return FaultSimService(ServeConfig(state_dir=str(tmp_path / name), **overrides))


def direct_blob(seed, patterns=40):
    circuit = load("s27")
    result = run_stuck_at(
        circuit, random_sequence(circuit, patterns, seed=seed), "csim-MV"
    )
    return serialize_result(result, circuit)


# ----------------------------------------------------------------------
# the tentpole scenario: worker killed mid-batch, reaped without restart
# ----------------------------------------------------------------------


class TestMidBatchKill:
    def test_batch_members_reaped_and_bit_identical(self, tmp_path):
        service = make_service(tmp_path)
        seeds = (5, 6, 7)
        records = [
            service.submit({**JOB, "seed": seed})[0] for seed in seeds
        ]
        victim_id = records[0].job_id

        # The worker claims all three (one batch: same circuit + engine),
        # dies 10 cycles into the head job.  Mates never start.
        with step_bomb(ConcurrentFaultSimulator, after_steps=10):
            with pytest.raises(KeyboardInterrupt):
                service.process_once()
        assert service.status(victim_id).state == "running"
        for record in records:
            assert service.status(record.job_id).lease_owner is not None

        # No restart, no recover(): lease expiry alone reclaims the batch.
        time.sleep(3 * service.config.lease_ttl)
        assert service.reap() == len(seeds)
        for record in records:
            refreshed = service.status(record.job_id)
            assert refreshed.state == "queued"
            assert refreshed.lease_owner is None

        with step_bomb(ConcurrentFaultSimulator, after_steps=10_000) as counter:
            assert service.drain() == len(seeds)

        victim = service.status(victim_id)
        assert victim.state == "done", victim.error
        assert victim.attempts == 2
        # checkpoint_every=4, killed after 10 cycles -> resume from cycle 8.
        assert victim.resumed_from_cycle == 8
        assert victim.error_history and victim.error_history[0]["kind"] == "lease"
        for record, seed in zip(records, seeds):
            assert service.result_bytes(record.job_id) == direct_blob(seed)
        # The victim's retry simulated 40-8 cycles; each mate all 40.
        assert counter["calls"] == (40 - 8) + 40 * (len(seeds) - 1)

        snapshot = service.metrics_snapshot()
        assert snapshot["resilience"]["lease_expirations"] >= len(seeds)
        assert snapshot["resilience"]["retries"] >= 1
        assert snapshot["leases"]["active"] == 0

    def test_mates_keep_attempt_count_victim_increments(self, tmp_path):
        service = make_service(tmp_path)
        records = [service.submit({**JOB, "seed": seed})[0] for seed in (5, 6)]
        with step_bomb(ConcurrentFaultSimulator, after_steps=10):
            with pytest.raises(KeyboardInterrupt):
                service.process_once()
        time.sleep(3 * service.config.lease_ttl)
        service.reap()
        service.drain()
        victim, mate = (service.status(r.job_id) for r in records)
        assert victim.attempts == 2  # claimed, died, retried
        assert mate.attempts == 1  # claimed but never started


class TestHungWorker:
    def test_hung_worker_loses_lease_and_discards_its_outcome(self, tmp_path):
        """A worker that stalls past the TTL wakes to find the job gone."""
        service = make_service(tmp_path, lease_ttl=0.05)
        record, _ = service.submit(dict(JOB))
        stop = threading.Event()

        def reap_loop():
            while not stop.is_set():
                service.reap()
                time.sleep(0.01)

        reaper = threading.Thread(target=reap_loop, daemon=True)
        reaper.start()
        try:
            # Hang 0.5s (10x the TTL) before failing: the reaper re-queues
            # the job mid-hang, so the woken worker's failure must be
            # fenced off by lost ownership, not recorded on the record.
            with step_bomb(
                ConcurrentFaultSimulator,
                after_steps=10,
                exception=ChaosError,
                hang_seconds=0.5,
            ):
                service.process_once()
        finally:
            stop.set()
            reaper.join(timeout=5)

        refreshed = service.status(record.job_id)
        assert refreshed.state == "queued"
        assert service.metrics.lease_losses == 1
        # The hung attempt's ChaosError was discarded: only the reaper's
        # lease note is in the history.
        assert all(entry["kind"] == "lease" for entry in refreshed.error_history)

        service.reap()  # push if the expiry left it outside the queue
        assert service.drain() == 1
        finished = service.status(record.job_id)
        assert finished.state == "done", finished.error
        assert finished.attempts == 2
        assert finished.resumed_from_cycle == 8
        assert service.result_bytes(record.job_id) == direct_blob(5)


# ----------------------------------------------------------------------
# classified retries, backoff, dead-lettering, resurrection
# ----------------------------------------------------------------------


class TestRetryAndDeadLetter:
    def test_classifier(self):
        assert classify_failure(OSError("disk")) == "transient"
        assert classify_failure(ChaosError("injected")) == "transient"
        from repro.robust.checkpoint import CheckpointError

        assert classify_failure(CheckpointError("torn")) == "transient"
        from repro.circuit.netlist import NetlistError

        assert classify_failure(NetlistError("bad gate")) == "permanent"
        assert classify_failure(SpecError("bad spec")) == "permanent"
        # Unknown exceptions fail fast: retries must not hide real bugs.
        assert classify_failure(ValueError("boom")) == "permanent"

    def test_transient_failure_retries_and_resumes(self, tmp_path):
        service = make_service(tmp_path, retry_backoff_base=0.0)
        record, _ = service.submit(dict(JOB))
        with step_bomb(ConcurrentFaultSimulator, after_steps=10, exception=OSError):
            assert service.process_once() == 1  # handled, not propagated
        refreshed = service.status(record.job_id)
        assert refreshed.state == "queued"
        assert refreshed.attempts == 1
        assert refreshed.next_retry_at is not None
        assert refreshed.error_history[0]["kind"] == "transient"

        # The backoff re-entry point is the reaper, not an immediate push.
        assert service.drain() == 0  # not in the queue yet
        assert service.reap() >= 1
        with step_bomb(ConcurrentFaultSimulator, after_steps=10_000) as counter:
            assert service.drain() == 1
        finished = service.status(record.job_id)
        assert finished.state == "done", finished.error
        assert finished.attempts == 2
        assert finished.resumed_from_cycle == 8
        assert counter["calls"] == 40 - 8
        assert service.result_bytes(record.job_id) == direct_blob(5)
        assert service.metrics_snapshot()["resilience"]["retries"] == 1

    def test_backoff_delays_grow_and_are_respected(self, tmp_path):
        service = make_service(tmp_path, retry_backoff_base=30.0, max_attempts=5)
        record, _ = service.submit(dict(JOB))
        with step_bomb(ConcurrentFaultSimulator, after_steps=0, exception=OSError):
            service.process_once()
        refreshed = service.status(record.job_id)
        assert refreshed.next_retry_at > time.time() + 15.0
        # Backoff in the future: the reaper must NOT re-queue it yet.
        assert service.reap() == 0
        assert service.drain() == 0

    def test_exhausted_attempts_dead_letter_with_history(self, tmp_path):
        service = make_service(tmp_path, retry_backoff_base=0.0, max_attempts=2)
        record, _ = service.submit(dict(JOB))
        with step_bomb(ConcurrentFaultSimulator, after_steps=0, exception=OSError):
            service.process_once()  # attempt 1 -> queued with backoff
            service.reap()  # backoff (0s) elapsed -> re-queued
            service.process_once()  # attempt 2 -> budget spent -> dead
        dead = service.status(record.job_id)
        assert dead.state == "dead"
        assert dead.attempts == 2
        assert dead.finished_at is not None
        assert len(dead.error_history) == 2
        assert [entry["attempt"] for entry in dead.error_history] == [1, 2]
        assert service.metrics_snapshot()["jobs"]["dead_lettered"] == 1
        # Terminal: neither recover() nor the reaper touches it.
        assert service.recover() == 0
        assert service.reap() == 0

    def test_per_job_max_attempts_overrides_service_default(self, tmp_path):
        service = make_service(tmp_path, retry_backoff_base=0.0, max_attempts=3)
        record, _ = service.submit({**JOB, "max_attempts": 1})
        with step_bomb(ConcurrentFaultSimulator, after_steps=0, exception=OSError):
            service.process_once()
        assert service.status(record.job_id).state == "dead"

    def test_retry_job_resurrects_dead_job(self, tmp_path):
        service = make_service(tmp_path, retry_backoff_base=0.0, max_attempts=1)
        record, _ = service.submit(dict(JOB))
        with step_bomb(ConcurrentFaultSimulator, after_steps=0, exception=OSError):
            service.process_once()
        assert service.status(record.job_id).state == "dead"

        assert service.retry_job(record.job_id)
        reborn = service.status(record.job_id)
        assert reborn.state == "queued"
        assert reborn.attempts == 0
        assert reborn.error_history  # the audit trail survives
        assert service.drain() == 1
        assert service.status(record.job_id).state == "done"
        assert service.result_bytes(record.job_id) == direct_blob(5)
        assert service.metrics_snapshot()["jobs"]["resurrected"] == 1

    def test_retry_job_refuses_non_terminal_states(self, tmp_path):
        service = make_service(tmp_path)
        record, _ = service.submit(dict(JOB))
        assert not service.retry_job(record.job_id)  # queued
        assert not service.retry_job("job-999999")  # missing
        service.drain()
        assert not service.retry_job(record.job_id)  # done

    def test_requeue_dead_resurrects_every_dead_job(self, tmp_path):
        service = make_service(tmp_path, retry_backoff_base=0.0, max_attempts=1)
        records = [service.submit({**JOB, "seed": seed})[0] for seed in (5, 6)]
        with step_bomb(ConcurrentFaultSimulator, after_steps=0, exception=OSError):
            service.drain()
        assert all(service.status(r.job_id).state == "dead" for r in records)
        assert service.requeue_dead() == 2
        assert service.drain() == 2
        assert all(service.status(r.job_id).state == "done" for r in records)

    def test_permanent_failure_fails_fast_on_attempt_one(self, tmp_path):
        # cache_results=False defers spec resolution to execution time (a
        # caching submit resolves eagerly and 400s a bad netlist instead).
        service = make_service(tmp_path, max_attempts=5, cache_results=False)
        record, _ = service.submit({"netlist": "this is not a netlist"})
        assert service.process_once() == 1
        failed = service.status(record.job_id)
        assert failed.state == "failed"
        assert failed.attempts == 1  # no retry burned on a deterministic bug
        assert failed.error_history[0]["kind"] == "permanent"

    def test_error_message_is_clipped(self, tmp_path):
        record = JobRecord(job_id="job-000001", spec={})
        record.attempts = 1
        record.note_error("x" * 10_000, kind="transient")
        assert len(record.error) <= ERROR_MAX_CHARS
        assert "[10000 chars]" in record.error
        for _ in range(20):
            record.note_error("again", kind="transient")
        assert len(record.error_history) == 8
        assert record.error_history_dropped == 13


# ----------------------------------------------------------------------
# deadlines
# ----------------------------------------------------------------------


class TestDeadlines:
    def test_expired_deadline_truncates_and_skips_cache(self, tmp_path):
        service = make_service(tmp_path)
        record, _ = service.submit({**JOB, "deadline_seconds": 0.0})
        assert service.drain() == 1
        finished = service.status(record.job_id)
        assert finished.state == "done"
        document = json.loads(service.result_bytes(record.job_id))
        assert document["truncated"] is True
        # Truncated results never enter the cache: a duplicate simulates.
        duplicate, _ = service.submit(dict(JOB))
        assert not duplicate.cache_hit

    def test_generous_deadline_changes_nothing(self, tmp_path):
        service = make_service(tmp_path)
        record, _ = service.submit({**JOB, "deadline_seconds": 3600.0})
        service.drain()
        document = json.loads(service.result_bytes(record.job_id))
        assert document["truncated"] is False
        assert service.result_bytes(record.job_id) == direct_blob(5)

    def test_deadline_composes_with_cycle_budget(self, tmp_path):
        service = make_service(tmp_path)
        record, _ = service.submit(
            {**JOB, "max_cycles": 10, "deadline_seconds": 3600.0}
        )
        service.drain()
        document = json.loads(service.result_bytes(record.job_id))
        assert document["truncated"] is True  # the stricter axis won

    def test_bad_deadline_rejected_at_submit(self, tmp_path):
        service = make_service(tmp_path)
        with pytest.raises(SpecError):
            service.submit({**JOB, "deadline_seconds": -1.0})
        with pytest.raises(SpecError):
            service.submit({**JOB, "max_attempts": 0})


# ----------------------------------------------------------------------
# drain
# ----------------------------------------------------------------------


class TestDrain:
    def test_draining_service_refuses_submissions(self, tmp_path):
        service = make_service(tmp_path)
        service.begin_drain()
        with pytest.raises(ServiceDraining):
            service.submit(dict(JOB))

    def test_draining_service_stops_claiming(self, tmp_path):
        service = make_service(tmp_path)
        record, _ = service.submit(dict(JOB))
        service.begin_drain()
        assert service.process_once() == 0
        assert service.status(record.job_id).state == "queued"  # durable hand-off

    def test_health_reports_draining_and_saturation(self, tmp_path):
        service = make_service(tmp_path, queue_limit=4)
        service.submit(dict(JOB))
        health = service.health()
        assert health["status"] == "ok"
        assert health["queue_saturation"] == 0.25
        assert "reaper_last_run" in health
        service.begin_drain()
        assert service.health()["status"] == "draining"
        assert service.health()["draining"] is True

    def test_worker_pool_retires_on_drain(self, tmp_path):
        service = make_service(tmp_path, workers=2)
        service.start()
        try:
            assert service.health()["workers_alive"] == 2
            service.begin_drain()
            assert service.await_drained(timeout=10.0)
        finally:
            service.stop()


# ----------------------------------------------------------------------
# the reaper thread and lease observability
# ----------------------------------------------------------------------


class TestReaperThread:
    def test_background_reaper_recovers_without_manual_reap(self, tmp_path):
        service = make_service(
            tmp_path, lease_ttl=0.05, reaper_interval=0.02, retry_backoff_base=0.0
        )
        record, _ = service.submit(dict(JOB))
        with step_bomb(ConcurrentFaultSimulator, after_steps=10):
            with pytest.raises(KeyboardInterrupt):
                service.process_once()
        service.start()  # workers=0: only the reaper runs
        try:
            deadline = time.time() + 10.0
            while time.time() < deadline:
                if service.status(record.job_id).state == "queued":
                    break
                time.sleep(0.02)
            refreshed = service.status(record.job_id)
            assert refreshed.state == "queued"
        finally:
            service.stop()
        assert service.metrics.reaper_runs >= 1
        assert service.drain() == 1
        assert service.result_bytes(record.job_id) == direct_blob(5)

    def test_checkpoint_mtime_counts_as_heartbeat(self, tmp_path):
        """A fresh checkpoint keeps an expired-lease job off the reap list."""
        service = make_service(tmp_path, lease_ttl=0.2)
        record, _ = service.submit(dict(JOB))
        with step_bomb(ConcurrentFaultSimulator, after_steps=10):
            with pytest.raises(KeyboardInterrupt):
                service.process_once()
        # Force the lease to look ancient but touch the checkpoint now:
        # the mtime rule must extend the lease instead of expiring it.
        import os

        running = service.status(record.job_id)
        running.lease_expires_at = time.time() - 100.0
        service.store.save(running)
        os.utime(service._checkpoint_path(record.job_id))
        assert service.reap() == 0
        assert service.status(record.job_id).state == "running"
        assert service.status(record.job_id).lease_expires_at > time.time()

    def test_lease_stats_track_active_leases(self, tmp_path):
        service = make_service(tmp_path, lease_ttl=30.0)
        record, _ = service.submit(dict(JOB))
        with step_bomb(ConcurrentFaultSimulator, after_steps=10):
            with pytest.raises(KeyboardInterrupt):
                service.process_once()
        snapshot = service.metrics_snapshot()
        assert snapshot["leases"]["active"] == 1
        assert snapshot["leases"]["oldest_age_seconds"] >= 0.0
        assert service.status(record.job_id).lease_owner is not None

    def test_recover_clears_stale_leases(self, tmp_path):
        service = make_service(tmp_path)
        record, _ = service.submit(dict(JOB))
        with step_bomb(ConcurrentFaultSimulator, after_steps=10):
            with pytest.raises(KeyboardInterrupt):
                service.process_once()
        reborn = make_service(tmp_path)
        assert reborn.recover() == 1
        refreshed = reborn.status(record.job_id)
        assert refreshed.state == "queued"
        assert refreshed.lease_owner is None


# ----------------------------------------------------------------------
# prometheus exposition of the new families
# ----------------------------------------------------------------------


class TestPrometheus:
    def test_resilience_families_render_and_parse(self, tmp_path):
        service = make_service(tmp_path, retry_backoff_base=0.0, max_attempts=1)
        service.submit(dict(JOB))
        with step_bomb(ConcurrentFaultSimulator, after_steps=0, exception=OSError):
            service.drain()
        text = render_prometheus(service.metrics_snapshot())
        metrics = parse_prometheus_text(text)
        assert metrics["repro_dead_lettered_total"] == [({}, 1.0)]
        assert metrics["repro_retries_total"] == [({}, 0.0)]
        assert metrics["repro_draining"] == [({}, 0.0)]
        assert metrics["repro_leases_active"] == [({}, 0.0)]
        assert metrics["repro_queue_saturation"] == [({}, 0.0)]
        events = dict(
            (labels["event"], value)
            for labels, value in metrics["repro_lease_events_total"]
        )
        assert set(events) == {"expired", "renewed", "lost"}
        assert "repro_reaper_last_run_seconds" in metrics
        assert ({"state": "dead_lettered"}, 1.0) in metrics["repro_jobs_total"]

    def test_draining_gauge_flips(self, tmp_path):
        service = make_service(tmp_path)
        service.begin_drain()
        metrics = parse_prometheus_text(
            render_prometheus(service.metrics_snapshot())
        )
        assert metrics["repro_draining"] == [({}, 1.0)]
