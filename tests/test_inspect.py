"""``repro inspect``: rendering a real recorded trace directory.

A traced parallel run (span files from the coordinator and every shard
process, plus the manifest/telemetry sidecars) is the fixture; the
assertions cover each report section — timeline, shard balance, churn —
and the collapsed-stack flamegraph output.
"""

import re

import pytest

from repro.obs.inspect import (
    inspect_trace,
    load_sidecar,
    render_timeline,
    shard_balance_table,
    top_gates_report,
)
from repro.obs.span import TraceContext, read_spans, stitch_trace, trace_ids
from repro.parallel import run_parallel
from repro.patterns.random_gen import random_sequence


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """One parallel campaign recorded into a fresh trace directory."""
    from repro.circuit.library import load

    trace_dir = str(tmp_path_factory.mktemp("trace"))
    circuit = load("s27")
    tests = random_sequence(circuit, 20, seed=6)
    ctx = TraceContext.new_trace()
    result = run_parallel(
        circuit, tests, "csim-MV", jobs=2, trace_dir=trace_dir, trace_ctx=ctx
    )
    return trace_dir, ctx, result


class TestSections:
    def test_timeline_lists_every_phase(self, traced_run):
        trace_dir, ctx, _ = traced_run
        roots = stitch_trace(read_spans(trace_dir), ctx.trace_id)
        text = render_timeline(roots)
        assert ctx.trace_id in text.splitlines()[0]
        assert "plan" in text
        assert "shard 0/" in text
        assert "shard 1/" in text
        assert "merge" in text
        assert re.search(r"\d+\.\d+ ms", text)

    def test_shard_balance_table(self, traced_run):
        trace_dir, ctx, _ = traced_run
        roots = stitch_trace(read_spans(trace_dir), ctx.trace_id)
        table = shard_balance_table(roots)
        assert "shard work balance" in table
        assert "slowest/mean" in table
        assert re.search(r"balance: \d+ shards", table)

    def test_balance_table_without_shards(self):
        assert "no shard spans" in shard_balance_table([])

    def test_sidecars_resolve_by_trace_id(self, traced_run):
        trace_dir, ctx, result = traced_run
        manifest = load_sidecar(trace_dir, "manifest", ctx.trace_id)
        assert manifest["trace_id"] == ctx.trace_id
        assert manifest["jobs"] == 2
        telemetry = load_sidecar(trace_dir, "telemetry", ctx.trace_id)
        assert telemetry["counters"]["cycles"] == result.counters.cycles

    def test_top_gates_report(self, traced_run):
        trace_dir, ctx, _ = traced_run
        telemetry = load_sidecar(trace_dir, "telemetry", ctx.trace_id)
        report = top_gates_report(telemetry, top_k=5)
        assert "gates by fault-evaluation churn" in report
        assert top_gates_report(None) == "(no telemetry.json in trace directory)"


class TestFullReport:
    def test_inspect_trace_renders_all_sections(self, traced_run, tmp_path):
        trace_dir, ctx, _ = traced_run
        flame = str(tmp_path / "folded.txt")
        report = inspect_trace(trace_dir, flamegraph=flame)
        assert f"trace {ctx.trace_id}" in report
        assert "shard work balance" in report
        assert "manifest:" in report
        assert "collapsed stacks" in report
        lines = open(flame).read().splitlines()
        assert lines and all(
            re.match(r"^\S.* \d+$", line) for line in lines
        )
        assert any(line.startswith("shard ") for line in lines)

    def test_missing_traces_reported(self, tmp_path):
        assert "no span files" in inspect_trace(str(tmp_path))


class TestCli:
    def test_cli_inspect_renders(self, traced_run, capsys):
        from repro.cli import main

        trace_dir, ctx, _ = traced_run
        assert main(["inspect", trace_dir]) == 0
        out = capsys.readouterr().out
        assert ctx.trace_id in out
        assert "shard work balance" in out

    def test_cli_inspect_flamegraph_and_trace_id(self, traced_run, tmp_path, capsys):
        from repro.cli import main

        trace_dir, ctx, _ = traced_run
        flame = str(tmp_path / "out.folded")
        assert (
            main(
                [
                    "inspect", trace_dir,
                    "--trace-id", ctx.trace_id,
                    "--flamegraph", flame,
                    "--top", "3",
                ]
            )
            == 0
        )
        assert "collapsed stacks" in capsys.readouterr().out
        assert open(flame).read().strip()

    def test_cli_inspect_rejects_non_directory(self, tmp_path):
        from repro.cli import main

        missing = str(tmp_path / "nope")
        assert main(["inspect", missing]) == 2

    def test_multi_trace_directory_lists_ids(self, traced_run, capsys):
        """A second trace in the same directory: inspect names both ids."""
        from repro.circuit.library import load
        from repro.cli import main

        trace_dir, first_ctx, _ = traced_run
        circuit = load("s27")
        tests = random_sequence(circuit, 10, seed=7)
        second = TraceContext.new_trace()
        run_parallel(
            circuit, tests, "csim-MV", jobs=2, trace_dir=trace_dir, trace_ctx=second
        )
        ids = trace_ids(read_spans(trace_dir))
        assert set(ids) == {first_ctx.trace_id, second.trace_id}
        assert main(["inspect", trace_dir]) == 0
        out = capsys.readouterr().out
        assert "2 traces" in out
        assert "--trace-id" in out
