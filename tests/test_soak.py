"""Long-horizon consistency: engines stay in lockstep over many cycles.

Short cross-validation sweeps catch most divergence/convergence bugs; this
soak run guards the slow failure modes — stale elements surviving hundreds
of cycles of state churn, drift between the dropping and non-dropping
configurations, memory-counter leaks.
"""

import pytest

from repro.baselines.proofs import ProofsSimulator
from repro.circuit.library import load
from repro.concurrent.engine import ConcurrentFaultSimulator
from repro.concurrent.options import CSIM_MV, CSIM_V
from repro.faults.universe import stuck_at_universe
from repro.patterns.random_gen import random_sequence

CYCLES = 1000


@pytest.fixture(scope="module")
def soak():
    circuit = load("s27")
    faults = stuck_at_universe(circuit)
    tests = random_sequence(circuit, CYCLES, seed=123, x_probability=0.05)
    return circuit, faults, tests


def test_engines_agree_over_thousand_cycles(soak):
    circuit, faults, tests = soak
    results = [
        ConcurrentFaultSimulator(circuit, faults, CSIM_V).run(tests),
        ConcurrentFaultSimulator(circuit, faults, CSIM_MV).run(tests),
        ConcurrentFaultSimulator(
            circuit, faults, CSIM_V.with_(drop_detected=False)
        ).run(tests),
        ProofsSimulator(circuit, faults).run(tests),
    ]
    reference = results[0]
    for result in results[1:]:
        assert result.detected == reference.detected, result.engine
        assert result.potentially_detected == reference.potentially_detected, (
            result.engine
        )


def test_element_accounting_never_drifts(soak):
    """The incremental live-element counter must equal the actual list
    contents after a long run (a leak here silently corrupts the paper's
    memory tables)."""
    circuit, faults, tests = soak
    simulator = ConcurrentFaultSimulator(circuit, faults, CSIM_V)
    for vector in tests:
        simulator.step(vector)
    actual = sum(len(bucket) for bucket in simulator.vis) + sum(
        len(bucket) for bucket in simulator.invis
    )
    assert simulator._live_elements == actual


def test_dropping_keeps_lists_clean_long_term(soak):
    """Hundreds of cycles after detection, no detected fault's elements
    may linger anywhere (event-driven dropping must reach them all)."""
    circuit, faults, tests = soak
    simulator = ConcurrentFaultSimulator(circuit, faults, CSIM_V)
    for vector in tests:
        simulator.step(vector)
    detected_fids = {
        descriptor.fid
        for descriptor in simulator.descriptors
        if descriptor.detected and descriptor.detect_cycle <= CYCLES - 200
    }
    live_fids = set()
    for bucket in simulator.vis + simulator.invis:
        live_fids.update(bucket)
    assert not (live_fids & detected_fids)
