"""Counter/telemetry reconciliation across every engine and process count.

The observability plane's core invariant: the work an engine *reports*
(:class:`repro.result.WorkCounters`) and the work a tracer *observes*
(:class:`repro.obs.tracer.RecordingTracer`) are the same numbers — every
counter field has a mirroring hook, the hooks fire exactly as often as
the counters increment, and merging per-shard telemetry across a process
pool preserves the equality.
"""

import dataclasses

import pytest

from repro.harness.runner import run_stuck_at, run_transition
from repro.obs.tracer import RecordingTracer, Tracer
from repro.parallel import run_parallel
from repro.patterns.random_gen import random_sequence
from repro.result import WorkCounters

#: WorkCounters field -> the Tracer hook that mirrors it.  A new counter
#: field must be added here (and given a hook) or the test fails.
FIELD_HOOKS = {
    "cycles": "cycle_start",
    "good_evaluations": "good_evals",
    "fault_evaluations": "fault_evals",
    "element_visits": "element_visits",
    "events": "event",
    "gates_scheduled": "scheduled",
}

#: Every stuck-at engine, including the serial oracle.
STUCK_AT_ENGINES = (
    "serial", "csim", "csim-V", "csim-M", "csim-MV", "PROOFS", "vsim"
)


class TestHookMirror:
    @pytest.mark.parametrize(
        "field", [field.name for field in dataclasses.fields(WorkCounters)]
    )
    def test_every_counter_field_has_a_hook(self, field):
        assert field in FIELD_HOOKS, (
            f"WorkCounters.{field} has no mirroring tracer hook; "
            "extend the Tracer protocol and FIELD_HOOKS together"
        )
        assert callable(getattr(Tracer, FIELD_HOOKS[field]))

    def test_mapping_has_no_stale_fields(self):
        assert set(FIELD_HOOKS) == {
            field.name for field in dataclasses.fields(WorkCounters)
        }


def _assert_reconciled(tracer, result):
    assert tracer.totals == result.counters, (
        f"observed {tracer.totals} != reported {result.counters}"
    )
    assert result.telemetry is not None
    assert result.telemetry.totals == result.counters


class TestSingleProcess:
    @pytest.mark.parametrize("engine", STUCK_AT_ENGINES)
    def test_totals_equal_counters(self, s27, s27_tests, engine):
        tracer = RecordingTracer()
        result = run_stuck_at(s27, s27_tests, engine, tracer=tracer)
        assert result.counters.cycles > 0
        _assert_reconciled(tracer, result)

    def test_transition_engine(self, s27):
        tests = random_sequence(s27, 30, seed=5)
        tracer = RecordingTracer()
        result = run_transition(s27, tests, tracer=tracer)
        assert result.counters.cycles > 0
        _assert_reconciled(tracer, result)


class TestMergedAcrossShards:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_merged_telemetry_equals_merged_counters(self, s27, jobs):
        tests = random_sequence(s27, 24, seed=8)
        result = run_parallel(s27, tests, "csim-MV", jobs=jobs, telemetry=True)
        assert result.telemetry is not None
        assert result.telemetry.totals == result.counters
        assert result.counters.fault_evaluations > 0

    def test_merged_transition_telemetry(self, s27):
        tests = random_sequence(s27, 20, seed=9)
        result = run_parallel(
            s27, tests, "csim-MV", transition=True, jobs=2, telemetry=True
        )
        assert result.telemetry is not None
        assert result.telemetry.totals == result.counters


class TestCliComposition:
    """--profile composes with --jobs N (the old hard rejection is gone)."""

    def test_profile_with_jobs(self, capsys):
        from repro.cli import main

        argv = [
            "simulate", "s27", "--random-patterns", "16", "--seed", "2",
            "--jobs", "2", "--profile",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "profile:" in out
