"""Test-pattern substrate: containers, random generation, compaction."""

import pytest

from repro.concurrent.engine import ConcurrentFaultSimulator
from repro.concurrent.options import CSIM_V
from repro.logic.values import ONE, X, ZERO
from repro.patterns.atpg import generate_tests
from repro.patterns.compaction import greedy_compact_tests
from repro.patterns.random_gen import random_sequence, random_vector
from repro.patterns.vectors import TestSequence, format_vectors, parse_vectors


class TestSequenceContainer:
    def test_append_and_len(self):
        seq = TestSequence(2)
        seq.append((ZERO, ONE))
        seq.extend([(ONE, ONE), (X, ZERO)])
        assert len(seq) == 3
        assert seq[1] == (ONE, ONE)

    def test_width_enforced(self):
        seq = TestSequence(2)
        with pytest.raises(ValueError):
            seq.append((ZERO,))
        with pytest.raises(ValueError):
            TestSequence(2, [(ZERO,)])

    def test_prefix(self):
        seq = TestSequence(1, [(ZERO,), (ONE,), (X,)])
        assert len(seq.prefix(2)) == 2

    def test_iteration(self):
        seq = TestSequence(1, [(ZERO,), (ONE,)])
        assert list(seq) == [(ZERO,), (ONE,)]


class TestTextIO:
    def test_parse(self, s27):
        seq = parse_vectors("0101\n1xX0  # comment\n\n", s27)
        assert len(seq) == 2
        assert seq[1] == (ONE, X, X, ZERO)

    def test_parse_rejects_wrong_width(self, s27):
        with pytest.raises(ValueError, match="4 inputs"):
            parse_vectors("01\n", s27)

    def test_roundtrip(self, s27):
        seq = random_sequence(s27, 10, seed=1, x_probability=0.2)
        again = parse_vectors(format_vectors(seq), s27)
        assert again.vectors == seq.vectors


class TestRandomGeneration:
    def test_deterministic(self, s27):
        assert (
            random_sequence(s27, 20, seed=5).vectors
            == random_sequence(s27, 20, seed=5).vectors
        )

    def test_seed_matters(self, s27):
        assert (
            random_sequence(s27, 20, seed=5).vectors
            != random_sequence(s27, 20, seed=6).vectors
        )

    def test_x_probability(self):
        import random as random_module

        rng = random_module.Random(1)
        values = [random_vector(rng, 100, x_probability=0.5) for _ in range(5)]
        xs = sum(vector.count(X) for vector in values)
        assert 100 < xs < 400  # roughly half

    def test_no_x_by_default(self, s27):
        seq = random_sequence(s27, 50, seed=2)
        assert all(X not in vector for vector in seq)


class TestCompaction:
    def test_reaches_decent_coverage_on_s27(self, s27):
        tests, coverage = greedy_compact_tests(s27, seed=5, max_vectors=128)
        assert coverage > 0.7
        assert 0 < len(tests) <= 128

    def test_reported_coverage_is_replayable(self, s27):
        """The returned coverage must match an independent simulation of
        the returned sequence."""
        tests, coverage = greedy_compact_tests(s27, seed=5, max_vectors=64)
        replay = ConcurrentFaultSimulator(s27, options=CSIM_V).run(tests)
        assert replay.coverage == pytest.approx(coverage)

    def test_target_coverage_stops_early(self, s27):
        tests, coverage = greedy_compact_tests(
            s27, seed=5, target_coverage=0.3, max_vectors=256
        )
        assert coverage >= 0.3

    def test_deterministic(self, s27):
        first = greedy_compact_tests(s27, seed=9, max_vectors=32)
        second = greedy_compact_tests(s27, seed=9, max_vectors=32)
        assert first[0].vectors == second[0].vectors


class TestPresets:
    def test_unknown_effort_rejected(self, s27):
        with pytest.raises(ValueError, match="unknown effort"):
            generate_tests(s27, effort="heroic")

    def test_high_effort_at_least_as_good(self, s27):
        _, standard = generate_tests(s27, effort="standard", seed=3)
        _, high = generate_tests(s27, effort="high", seed=3)
        assert high >= standard - 0.05  # high effort should not be worse
