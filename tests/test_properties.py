"""Hypothesis property tests over the core invariants.

These complement the seeded cross-validation tests with shrinkable,
adversarial instances: hypothesis controls circuit shape, fault subsets and
vector content, and every property is one the paper's algorithm depends on.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines.proofs import ProofsSimulator
from repro.baselines.serial import simulate_serial
from repro.circuit.generate import random_circuit
from repro.circuit.macro import extract_macros
from repro.concurrent.engine import ConcurrentFaultSimulator
from repro.concurrent.options import CSIM, CSIM_MV, CSIM_V
from repro.faults.universe import all_stuck_at_faults
from repro.logic.values import ONE, VALUES, X, ZERO
from repro.patterns.vectors import TestSequence
from repro.sim.logicsim import LogicSimulator

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def circuit_and_vectors(draw, max_gates=18, max_vectors=12):
    seed = draw(st.integers(0, 2**20))
    num_inputs = draw(st.integers(2, 4))
    num_gates = draw(st.integers(4, max_gates))
    num_dffs = draw(st.integers(0, 3))
    circuit = random_circuit(
        random.Random(seed),
        num_inputs=num_inputs,
        num_gates=num_gates,
        num_dffs=num_dffs,
        num_outputs=draw(st.integers(1, 2)),
        name=f"hyp{seed}",
    )
    vectors = draw(
        st.lists(
            st.tuples(*[st.sampled_from(VALUES) for _ in range(num_inputs)]),
            min_size=1,
            max_size=max_vectors,
        )
    )
    return circuit, TestSequence(num_inputs, vectors)


class TestEngineEquivalence:
    @SLOW
    @given(circuit_and_vectors())
    def test_concurrent_equals_serial(self, instance):
        circuit, tests = instance
        faults = all_stuck_at_faults(circuit)
        oracle = simulate_serial(circuit, tests.vectors, faults)
        for options in (CSIM, CSIM_V, CSIM_MV):
            result = ConcurrentFaultSimulator(circuit, faults, options).run(tests)
            assert result.detected == oracle.detected

    @SLOW
    @given(circuit_and_vectors())
    def test_proofs_equals_serial(self, instance):
        circuit, tests = instance
        faults = all_stuck_at_faults(circuit)
        oracle = simulate_serial(circuit, tests.vectors, faults)
        result = ProofsSimulator(circuit, faults, word_size=4).run(tests)
        assert result.detected == oracle.detected


class TestMacroExactness:
    @SLOW
    @given(circuit_and_vectors())
    def test_macro_circuit_value_identical(self, instance):
        circuit, tests = instance
        macro = extract_macros(circuit).circuit
        flat_sim = LogicSimulator(circuit)
        macro_sim = LogicSimulator(macro)
        for vector in tests:
            assert flat_sim.step(vector) == macro_sim.step(vector)


class TestEngineInvariants:
    @SLOW
    @given(circuit_and_vectors())
    def test_visible_elements_differ_from_good(self, instance):
        """Structural invariant of the data structure: a visible element's
        value always differs from the good value; an invisible element's
        always equals it."""
        circuit, tests = instance
        sim = ConcurrentFaultSimulator(circuit, all_stuck_at_faults(circuit), CSIM_V)
        for vector in tests:
            sim.step(vector)
            for gate_index in range(len(circuit.gates)):
                good = sim.good[gate_index]
                for value in sim.vis[gate_index].values():
                    assert value != good
                for value in sim.invis[gate_index].values():
                    assert value == good

    @SLOW
    @given(circuit_and_vectors())
    def test_detection_monotone_in_prefix(self, instance):
        """Running a prefix can never detect faults the full run misses,
        and detection cycles agree on the common prefix."""
        circuit, tests = instance
        faults = all_stuck_at_faults(circuit)
        full = ConcurrentFaultSimulator(circuit, faults, CSIM_V).run(tests)
        half = ConcurrentFaultSimulator(circuit, faults, CSIM_V).run(
            tests.prefix(max(1, len(tests) // 2))
        )
        for fault, cycle in half.detected.items():
            assert full.detected.get(fault) == cycle

    @SLOW
    @given(circuit_and_vectors(max_vectors=8))
    def test_good_values_match_reference(self, instance):
        """The concurrent engine's good machine equals the reference
        simulator at every observed output, every cycle."""
        circuit, tests = instance
        sim = ConcurrentFaultSimulator(circuit, [], CSIM)
        reference = LogicSimulator(circuit)
        for vector in tests:
            reference.step(vector)
            sim.step(vector)
            # Post-clock states must coincide gate for gate.
            assert sim.good == reference.values


class TestPodemProperties:
    @SLOW
    @given(st.integers(0, 2**16))
    def test_podem_vectors_detect_their_targets(self, seed):
        """Any fault PODEM claims testable is detected by its vector, and
        any fault it proves redundant is never detected by random probing."""
        import random as random_module

        from repro.baselines.deductive import deductive_detects
        from repro.faults.universe import stuck_at_universe
        from repro.patterns.podem import podem

        rng = random_module.Random(seed)
        circuit = random_circuit(
            rng, num_inputs=rng.randint(2, 4), num_gates=rng.randint(4, 12),
            num_dffs=0, name=f"podhyp{seed}",
        )
        faults = stuck_at_universe(circuit)
        for fault in faults[:: max(1, len(faults) // 6)]:
            result = podem(circuit, fault)
            if result.detected:
                vector = tuple(ZERO if v == X else v for v in result.vector)
                assert fault in deductive_detects(circuit, vector, [fault])
            elif result.redundant:
                for _ in range(8):
                    probe = tuple(
                        rng.choice((ZERO, ONE)) for _ in circuit.inputs
                    )
                    assert fault not in deductive_detects(circuit, probe, [fault])
