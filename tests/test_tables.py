"""Unit and property tests for gate evaluation and packed lookup tables."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.logic.tables import (
    GateType,
    MAX_TABLE_ARITY,
    build_table,
    evaluate,
    evaluate_packed,
    inverted_base,
    pack_inputs,
    packed_table,
    unpack_inputs,
)
from repro.logic.values import ONE, VALUES, X, ZERO, invert

_EVALUABLE = [
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
]


class TestEvaluateSemantics:
    def test_and_controlling_zero_beats_x(self):
        assert evaluate(GateType.AND, (ZERO, X)) == ZERO
        assert evaluate(GateType.AND, (X, ZERO, ONE)) == ZERO

    def test_and_all_ones(self):
        assert evaluate(GateType.AND, (ONE, ONE, ONE)) == ONE

    def test_and_with_x_and_ones(self):
        assert evaluate(GateType.AND, (ONE, X)) == X

    def test_or_controlling_one_beats_x(self):
        assert evaluate(GateType.OR, (ONE, X)) == ONE

    def test_or_all_zeros(self):
        assert evaluate(GateType.OR, (ZERO, ZERO)) == ZERO

    def test_or_with_x(self):
        assert evaluate(GateType.OR, (ZERO, X)) == X

    def test_xor_parity(self):
        assert evaluate(GateType.XOR, (ONE, ZERO, ONE)) == ZERO
        assert evaluate(GateType.XOR, (ONE, ZERO, ZERO)) == ONE

    def test_xor_any_x_is_x(self):
        assert evaluate(GateType.XOR, (ONE, X)) == X

    def test_inverting_types_are_complements(self):
        for base, inverted in [
            (GateType.AND, GateType.NAND),
            (GateType.OR, GateType.NOR),
            (GateType.XOR, GateType.XNOR),
        ]:
            for inputs in itertools.product(VALUES, repeat=2):
                assert evaluate(inverted, inputs) == invert(evaluate(base, inputs))

    def test_not_buf(self):
        assert evaluate(GateType.NOT, (ZERO,)) == ONE
        assert evaluate(GateType.BUF, (X,)) == X

    def test_not_rejects_multiple_inputs(self):
        with pytest.raises(ValueError):
            evaluate(GateType.NOT, (ZERO, ONE))

    def test_constants(self):
        assert evaluate(GateType.CONST0, ()) == ZERO
        assert evaluate(GateType.CONST1, ()) == ONE

    def test_source_types_not_evaluable(self):
        with pytest.raises(ValueError):
            evaluate(GateType.INPUT, ())
        with pytest.raises(ValueError):
            evaluate(GateType.DFF, (ONE,))


class TestPacking:
    def test_pack_single(self):
        assert pack_inputs((ONE,)) == 1
        assert pack_inputs((X,)) == 2

    def test_pack_positional(self):
        assert pack_inputs((ZERO, ONE)) == 0b0100
        assert pack_inputs((ONE, ZERO)) == 0b0001

    @given(st.lists(st.sampled_from(VALUES), min_size=0, max_size=MAX_TABLE_ARITY))
    def test_pack_unpack_roundtrip(self, values):
        packed = pack_inputs(values)
        assert unpack_inputs(packed, len(values)) == tuple(values)


class TestPackedTables:
    @pytest.mark.parametrize("gtype", _EVALUABLE)
    @pytest.mark.parametrize("arity", [1, 2, 3, 4])
    def test_table_matches_evaluate(self, gtype, arity):
        for inputs in itertools.product(VALUES, repeat=arity):
            packed = pack_inputs(inputs)
            assert evaluate_packed(gtype, packed, arity) == evaluate(gtype, inputs)

    def test_tables_are_memoized(self):
        assert packed_table(GateType.AND, 2) is packed_table(GateType.AND, 2)

    def test_wide_gate_falls_back(self):
        arity = MAX_TABLE_ARITY + 2
        inputs = (ONE,) * arity
        assert evaluate_packed(GateType.AND, pack_inputs(inputs), arity) == ONE

    def test_build_table_size(self):
        table = build_table(lambda inputs: inputs[0], 2)
        assert len(table) == 16

    def test_build_table_rejects_excessive_arity(self):
        with pytest.raises(ValueError):
            build_table(lambda inputs: ZERO, MAX_TABLE_ARITY + 1)

    def test_illegal_codes_map_to_x(self):
        table = build_table(lambda inputs: ONE, 1)
        assert table[0b11] == X


class TestInvertedBase:
    def test_known_pairs(self):
        assert inverted_base(GateType.NAND) is GateType.AND
        assert inverted_base(GateType.NOR) is GateType.OR
        assert inverted_base(GateType.XNOR) is GateType.XOR
        assert inverted_base(GateType.NOT) is GateType.BUF

    def test_identity_for_others(self):
        assert inverted_base(GateType.AND) is GateType.AND
