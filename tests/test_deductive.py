"""Deductive fault simulation: combinational baseline and its guard rails."""

import random

import pytest

from repro.baselines.deductive import deductive_detects, simulate_deductive
from repro.baselines.serial import simulate_serial
from repro.circuit.generate import random_circuit
from repro.circuit.library import load
from repro.circuit.netlist import CircuitBuilder
from repro.faults.universe import all_stuck_at_faults, stuck_at_universe
from repro.logic.tables import GateType
from repro.logic.values import ONE, X, ZERO
from repro.patterns.random_gen import random_sequence


def _comb_circuit(seed, gates=15):
    rng = random.Random(seed)
    return random_circuit(rng, num_gates=gates, num_dffs=0, name=f"ded{seed}")


class TestGuards:
    def test_sequential_rejected(self):
        with pytest.raises(ValueError, match="combinational-only"):
            deductive_detects(load("s27"), (ZERO, ZERO, ZERO, ZERO))

    def test_x_vector_rejected(self):
        circuit = _comb_circuit(1)
        vector = [X] * len(circuit.inputs)
        with pytest.raises(ValueError, match="two-valued"):
            deductive_detects(circuit, vector)


class TestSingleVector:
    def test_and_gate_example(self):
        builder = CircuitBuilder("and2")
        builder.add_input("a")
        builder.add_input("b")
        builder.add_gate("g", GateType.AND, ["a", "b"])
        builder.set_output("g")
        circuit = builder.build()
        g = circuit.index_of("g")
        # Use the uncollapsed universe so every site appears by itself.
        detected = deductive_detects(circuit, (ONE, ONE), all_stuck_at_faults(circuit))
        from repro.faults.model import OUTPUT_PIN, StuckAtFault

        assert StuckAtFault.make(g, 0, 0) in detected
        assert StuckAtFault.make(g, OUTPUT_PIN, 0) in detected
        assert StuckAtFault.make(g, 0, 1) not in detected  # not excited

    def test_universe_filter(self):
        circuit = _comb_circuit(2)
        universe = stuck_at_universe(circuit)[:5]
        detected = deductive_detects(circuit, (ZERO,) * len(circuit.inputs), universe)
        assert detected <= set(universe)


class TestAgainstSerial:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_serial_per_vector_set(self, seed):
        circuit = _comb_circuit(seed + 10)
        faults = (
            all_stuck_at_faults(circuit) if seed % 2 else stuck_at_universe(circuit)
        )
        tests = random_sequence(circuit, 8, seed=seed)
        oracle = simulate_serial(circuit, tests.vectors, faults)
        result = simulate_deductive(circuit, tests.vectors, faults)
        assert result.detected == oracle.detected

    def test_result_fields(self):
        circuit = _comb_circuit(3)
        tests = random_sequence(circuit, 5, seed=1)
        result = simulate_deductive(circuit, tests.vectors)
        assert result.engine == "deductive"
        assert result.num_vectors == 5
        assert 0.0 <= result.coverage <= 1.0
