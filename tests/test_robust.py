"""Tests for the resilience subsystem: checkpoints, budgets, runner, ladder."""

import os
import signal

import pytest

from repro.circuit.library import load
from repro.harness.runner import run_stuck_at, run_transition, workload_tests
from repro.obs import RecordingTracer
from repro.obs.tracer import Tracer
from repro.robust import (
    Budget,
    CampaignInterrupted,
    Checkpoint,
    CheckpointError,
    TableCampaign,
    circuit_fingerprint,
    config_fingerprint,
    read_checkpoint,
    run_checkpointed,
    run_fingerprint,
    run_with_ladder,
    verify_invariants,
    write_checkpoint,
)
from repro.robust.budget import BudgetBreach
from repro.robust.ladder import oracle_spot_check


@pytest.fixture(scope="module")
def s27():
    return load("s27")


@pytest.fixture(scope="module")
def s27_tests(s27):
    return workload_tests("s27")


def _same_result(left, right):
    """Bit-identity on everything but wall-clock time."""
    assert left.detected == right.detected
    assert left.potentially_detected == right.potentially_detected
    assert left.counters == right.counters
    assert left.memory.peak_bytes == right.memory.peak_bytes
    assert left.num_vectors == right.num_vectors
    assert left.num_faults == right.num_faults
    assert left.coverage == right.coverage


class TestCheckpointFile:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "ck.pkl")
        original = Checkpoint("run", "fp", {"cycle": 7, "state": {"x": [1, 2]}})
        write_checkpoint(path, original)
        loaded = read_checkpoint(path)
        assert loaded.kind == "run"
        assert loaded.fingerprint == "fp"
        assert loaded.payload == original.payload

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint file"):
            read_checkpoint(str(tmp_path / "absent.pkl"))

    def test_truncation_detected(self, tmp_path):
        path = str(tmp_path / "ck.pkl")
        write_checkpoint(path, Checkpoint("run", "fp", {"state": list(range(100))}))
        size = os.path.getsize(path)
        with open(path, "rb+") as handle:
            handle.truncate(size - 5)
        with pytest.raises(CheckpointError, match="truncated or corrupt"):
            read_checkpoint(path)

    def test_corruption_detected(self, tmp_path):
        path = str(tmp_path / "ck.pkl")
        write_checkpoint(path, Checkpoint("run", "fp", {"state": list(range(100))}))
        blob = bytearray(open(path, "rb").read())
        blob[-10] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        with pytest.raises(CheckpointError, match="truncated or corrupt"):
            read_checkpoint(path)

    def test_not_a_checkpoint(self, tmp_path):
        path = str(tmp_path / "notes.txt")
        open(path, "w").write("just some text, definitely not a checkpoint")
        with pytest.raises(CheckpointError, match="magic"):
            read_checkpoint(path)

    def test_fingerprint_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "ck.pkl")
        write_checkpoint(path, Checkpoint("run", "fp-a", {}))
        with pytest.raises(CheckpointError, match="different campaign"):
            read_checkpoint(path, expect_fingerprint="fp-b")

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        path = str(tmp_path / "ck.pkl")
        for cycle in range(5):
            write_checkpoint(path, Checkpoint("run", "fp", {"cycle": cycle}))
        assert sorted(p.name for p in tmp_path.iterdir()) == ["ck.pkl"]
        assert read_checkpoint(path).payload["cycle"] == 4

    def test_fingerprints_are_config_sensitive(self, s27, s27_tests):
        base = run_fingerprint(s27, s27_tests, "csim-MV", [], False)
        assert base == run_fingerprint(s27, s27_tests, "csim-MV", [], False)
        assert base != run_fingerprint(s27, s27_tests, "csim", [], False)
        assert base != run_fingerprint(s27, s27_tests, "csim-MV", [], True)
        other = load("s298", scale=0.25)
        assert circuit_fingerprint(s27) != circuit_fingerprint(other)
        assert config_fingerprint("a", 1) != config_fingerprint("a", 2)


class TestBudget:
    def test_unset_budget_is_falsy(self):
        assert not Budget()
        assert Budget(max_cycles=5)

    def test_cycle_budget_truncates(self, s27, s27_tests):
        result = run_stuck_at(s27, s27_tests, "csim-MV", budget=Budget(max_cycles=5))
        assert result.truncated
        assert result.num_vectors == 5
        assert "cycle budget" in result.truncation_reason
        assert "[truncated:" in result.summary()

    def test_wall_budget_truncates(self, s27, s27_tests):
        result = run_stuck_at(
            s27, s27_tests, "csim-MV", budget=Budget(max_wall_seconds=0.0)
        )
        assert result.truncated
        assert "wall-clock budget" in result.truncation_reason
        assert result.num_vectors == 0

    def test_memory_budget_truncates(self, s27, s27_tests):
        result = run_stuck_at(
            s27, s27_tests, "csim-MV", budget=Budget(max_memory_bytes=1)
        )
        assert result.truncated
        assert "memory budget" in result.truncation_reason

    def test_unbreached_budget_changes_nothing(self, s27, s27_tests):
        plain = run_stuck_at(s27, s27_tests, "csim-MV")
        budgeted = run_stuck_at(
            s27, s27_tests, "csim-MV", budget=Budget(max_cycles=10**9)
        )
        _same_result(plain, budgeted)
        assert not budgeted.truncated
        assert budgeted.truncation_reason is None

    def test_breach_reported_through_tracer(self, s27, s27_tests):
        tracer = RecordingTracer()
        result = run_stuck_at(
            s27, s27_tests, "csim-MV", tracer=tracer, budget=Budget(max_cycles=3)
        )
        assert result.truncated
        assert len(tracer.budget_breaches) == 1
        breach = tracer.budget_breaches[0]
        assert breach["kind"] == "cycles"
        assert breach["limit"] == 3
        assert result.telemetry.budget_breaches == tracer.budget_breaches

    @pytest.mark.parametrize("engine", ["PROOFS", "serial"])
    def test_other_engines_truncate_cleanly(self, s27, s27_tests, engine):
        budget = (
            Budget(max_cycles=4) if engine == "PROOFS" else Budget(max_wall_seconds=0.0)
        )
        result = run_stuck_at(s27, s27_tests, engine, budget=budget)
        assert result.truncated

    def test_transition_budget(self, s27, s27_tests):
        result = run_transition(s27, s27_tests, budget=Budget(max_cycles=4))
        assert result.truncated
        assert result.num_vectors == 4

    def test_breach_describe(self):
        assert "wall-clock" in BudgetBreach("wall", 1.0, 2.0).describe()
        assert "cycle" in BudgetBreach("cycles", 5, 5).describe()
        assert "memory" in BudgetBreach("memory", 10, 20).describe()


class TestRunCheckpointed:
    @pytest.mark.parametrize(
        "circuit_name,engine",
        [
            ("s27", "csim-MV"),
            ("s27", "csim"),
            ("s27", "PROOFS"),
            ("s298", "csim-MV"),
            ("s298", "PROOFS"),
        ],
    )
    def test_interrupt_and_resume_bit_identical(self, tmp_path, circuit_name, engine):
        """The acceptance criterion: kill mid-run, resume, identical result."""
        scale = 0.25
        circuit = load(circuit_name, scale=scale)
        tests = workload_tests(circuit_name, scale)
        reference = run_stuck_at(circuit, tests, engine)
        path = str(tmp_path / "ck.pkl")
        # "Kill" mid-run via a cycle budget: the truncated run writes its
        # final checkpoint, exactly like an interrupted one.
        partial = run_checkpointed(
            circuit,
            tests,
            engine,
            budget=Budget(max_cycles=max(2, len(tests.vectors) // 3)),
            checkpoint_path=path,
            checkpoint_every=4,
        )
        assert partial.truncated
        assert partial.num_vectors < reference.num_vectors
        resumed = run_checkpointed(
            circuit, tests, engine, checkpoint_path=path, resume=True
        )
        _same_result(reference, resumed)

    def test_uninterrupted_equals_plain_run(self, s27, s27_tests):
        reference = run_stuck_at(s27, s27_tests, "csim-MV")
        result = run_checkpointed(s27, s27_tests, "csim-MV")
        _same_result(reference, result)

    def test_transition_resume_bit_identical(self, tmp_path, s27, s27_tests):
        reference = run_transition(s27, s27_tests)
        path = str(tmp_path / "ck.pkl")
        partial = run_checkpointed(
            s27,
            s27_tests,
            transition=True,
            budget=Budget(max_cycles=10),
            checkpoint_path=path,
        )
        assert partial.truncated
        resumed = run_checkpointed(
            s27, s27_tests, transition=True, checkpoint_path=path, resume=True
        )
        _same_result(reference, resumed)

    def test_raw_interrupt_resumes_from_periodic_checkpoint(
        self, tmp_path, s27, s27_tests, monkeypatch
    ):
        """A KeyboardInterrupt raised mid-step (not at the latched boundary)
        must leave the last periodic checkpoint usable."""
        from repro.concurrent.engine import ConcurrentFaultSimulator

        reference = run_stuck_at(s27, s27_tests, "csim-MV")
        path = str(tmp_path / "ck.pkl")
        real_step = ConcurrentFaultSimulator.step
        calls = {"n": 0}

        def exploding_step(self, vector):
            calls["n"] += 1
            if calls["n"] == 11:
                raise KeyboardInterrupt
            return real_step(self, vector)

        monkeypatch.setattr(ConcurrentFaultSimulator, "step", exploding_step)
        with pytest.raises(CampaignInterrupted) as info:
            run_checkpointed(
                s27, s27_tests, "csim-MV", checkpoint_path=path, checkpoint_every=4
            )
        assert info.value.checkpoint_path == path
        monkeypatch.setattr(ConcurrentFaultSimulator, "step", real_step)
        assert read_checkpoint(path).payload["cycle"] == 8
        resumed = run_checkpointed(
            s27, s27_tests, "csim-MV", checkpoint_path=path, resume=True
        )
        _same_result(reference, resumed)

    def test_sigint_writes_final_checkpoint_at_boundary(
        self, tmp_path, s27, s27_tests
    ):
        """A real SIGINT is latched and honoured between cycles: the final
        checkpoint captures every cycle completed so far."""

        class Interrupter(Tracer):
            def __init__(self):
                self.cycles = 0

            def cycle_start(self, cycle):
                self.cycles += 1
                if self.cycles == 9:
                    os.kill(os.getpid(), signal.SIGINT)

        reference = run_stuck_at(s27, s27_tests, "csim-MV")
        path = str(tmp_path / "ck.pkl")
        with pytest.raises(CampaignInterrupted) as info:
            run_checkpointed(
                s27,
                s27_tests,
                "csim-MV",
                tracer=Interrupter(),
                checkpoint_path=path,
                checkpoint_every=1000,
            )
        assert info.value.cycles_done == 9
        assert read_checkpoint(path).payload["cycle"] == 9
        resumed = run_checkpointed(
            s27, s27_tests, "csim-MV", checkpoint_path=path, resume=True
        )
        _same_result(reference, resumed)

    def test_resume_with_wrong_config_refused(self, tmp_path, s27, s27_tests):
        path = str(tmp_path / "ck.pkl")
        run_checkpointed(s27, s27_tests, "csim-MV", checkpoint_path=path)
        with pytest.raises(CheckpointError, match="different campaign"):
            run_checkpointed(s27, s27_tests, "csim", checkpoint_path=path, resume=True)

    def test_resume_without_path_refused(self, s27, s27_tests):
        with pytest.raises(CheckpointError, match="without a checkpoint path"):
            run_checkpointed(s27, s27_tests, resume=True)

    def test_serial_engine_rejected(self, s27, s27_tests):
        with pytest.raises(ValueError, match="serial"):
            run_checkpointed(s27, s27_tests, "serial")


class TestInvariants:
    def test_clean_run_has_no_violations(self, s27, s27_tests):
        from repro.harness.runner import make_stuck_at_simulator

        simulator = make_stuck_at_simulator(s27, "csim-MV")
        simulator.run(s27_tests)
        assert verify_invariants(simulator) == []

    def test_violations_reported(self, s27, s27_tests):
        from repro.harness.runner import make_stuck_at_simulator

        simulator = make_stuck_at_simulator(s27, "csim-MV")
        for vector in s27_tests.vectors[:3]:
            simulator.step(vector)
        simulator.vis[0][999] = 7  # a brand-new element the counter missed
        violations = verify_invariants(simulator)
        assert any("illegal logic value" in v for v in violations)
        assert any("counter" in v for v in violations)


class TestLadder:
    def test_clean_first_rung_no_fallbacks(self, s27, s27_tests):
        reference = run_stuck_at(s27, s27_tests, "csim-MV")
        result = run_with_ladder(s27, s27_tests)
        assert result.fallbacks == []
        assert result.detected == reference.detected
        assert "degraded" not in result.summary()

    def test_spot_check_agrees_on_clean_run(self, s27, s27_tests):
        result = run_stuck_at(s27, s27_tests, "csim-MV")
        assert oracle_spot_check(s27, s27_tests, result, sample_size=100) == []

    def test_spot_check_flags_wrong_detections(self, s27, s27_tests):
        result = run_stuck_at(s27, s27_tests, "csim-MV")
        fault = next(iter(result.detected))
        result.detected[fault] += 1  # corrupt one detection cycle
        discrepancies = oracle_spot_check(s27, s27_tests, result, sample_size=100)
        assert len(discrepancies) == 1
        assert discrepancies[0]["fault"] == repr(fault)

    def test_crashing_engine_degrades(self, s27, s27_tests):
        class Exploding:
            faults = []

            def run(self, tests, budget=None):
                raise RuntimeError("engine exploded")

        def factory(engine, circuit, faults, tracer):
            return Exploding() if engine == "csim-MV" else None

        tracer = RecordingTracer()
        reference = run_stuck_at(s27, s27_tests, "csim-MV")
        result = run_with_ladder(
            s27, s27_tests, tracer=tracer, simulator_factory=factory
        )
        assert result.detected == reference.detected
        assert [f["to"] for f in result.fallbacks] == ["csim"]
        assert "engine exploded" in result.fallbacks[0]["reason"]
        assert tracer.fallbacks == result.fallbacks
        assert "[degraded: csim-MV -> csim]" in result.summary()

    def test_every_rung_crashing_reaches_serial(self, s27, s27_tests):
        class Exploding:
            faults = []

            def run(self, tests, budget=None):
                raise RuntimeError("boom")

        reference = run_stuck_at(s27, s27_tests, "serial")
        result = run_with_ladder(
            s27, s27_tests, simulator_factory=lambda *a: Exploding()
        )
        assert result.engine == "serial"
        assert result.detected == reference.detected
        assert [f["engine"] for f in result.fallbacks] == ["csim-MV", "csim"]

    def test_repeated_budget_breach_degrades(self, s27, s27_tests):
        # A 0-cycle budget breaches on every rung; after the retries the
        # ladder lands on serial, whose wall-clock-only budget is unlimited
        # here, so the run completes there.
        result = run_with_ladder(
            s27, s27_tests, budget=Budget(max_cycles=0), budget_retries=1
        )
        assert result.engine == "serial"
        assert len(result.fallbacks) == 2
        assert all("budget breached 2x" in f["reason"] for f in result.fallbacks)

    def test_exhausted_ladder_raises(self, s27, s27_tests):
        class Exploding:
            faults = []

            def run(self, tests, budget=None):
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            run_with_ladder(
                s27,
                s27_tests,
                ladder=("csim-MV", "csim"),
                simulator_factory=lambda *a: Exploding(),
            )

    def test_empty_ladder_rejected(self, s27, s27_tests):
        with pytest.raises(ValueError, match="empty"):
            run_with_ladder(s27, s27_tests, ladder=())


class TestTableCampaign:
    def test_cells_computed_once_across_resume(self, tmp_path):
        path = str(tmp_path / "tables.pkl")
        calls = []

        def make(value):
            def compute():
                calls.append(value)
                return value

            return compute

        first = TableCampaign(path, fingerprint="fp")
        assert first.cell(("t", 1), make("a")) == "a"
        assert first.cell(("t", 2), make("b")) == "b"
        resumed = TableCampaign(path, resume=True, fingerprint="fp")
        assert resumed.cell(("t", 1), make("a")) == "a"
        assert resumed.cell(("t", 3), make("c")) == "c"
        assert calls == ["a", "b", "c"]  # nothing recomputed on resume

    def test_resume_wrong_fingerprint_refused(self, tmp_path):
        path = str(tmp_path / "tables.pkl")
        TableCampaign(path, fingerprint="fp-a").cell(("t", 1), lambda: 1)
        with pytest.raises(CheckpointError, match="different campaign"):
            TableCampaign(path, resume=True, fingerprint="fp-b")

    def test_interrupt_saves_completed_cells(self, tmp_path):
        path = str(tmp_path / "tables.pkl")
        campaign = TableCampaign(path, fingerprint="fp")
        campaign.cell(("t", 1), lambda: "done")

        def interrupted():
            raise KeyboardInterrupt

        with pytest.raises(CampaignInterrupted) as info:
            campaign.cell(("t", 2), interrupted)
        assert info.value.checkpoint_path == path
        resumed = TableCampaign(path, resume=True, fingerprint="fp")
        assert resumed.cells == {("t", 1): "done"}

    def test_table_driver_resumes_without_recompute(self, tmp_path, monkeypatch):
        from repro.harness import tables

        path = str(tmp_path / "tables.pkl")
        campaign = TableCampaign(path, fingerprint="fp")
        rows, text = tables.table2(("s27",), campaign=campaign)
        assert rows[0]["circuit"] == "s27"

        def forbidden(*args, **kwargs):
            raise AssertionError("resumed campaign must not recompute")

        monkeypatch.setattr(tables, "workload_circuit", forbidden)
        resumed = TableCampaign(path, resume=True, fingerprint="fp")
        rows_again, _ = tables.table2(("s27",), campaign=resumed)
        assert rows_again == rows
