"""Shared fixtures: the s27 reference circuit and small deterministic
workloads used across the suite."""

import random

import pytest

from repro.circuit.generate import random_circuit
from repro.circuit.library import load
from repro.patterns.random_gen import random_sequence


@pytest.fixture
def s27():
    return load("s27")


@pytest.fixture
def s27_tests(s27):
    return random_sequence(s27, 50, seed=3)


def make_circuit(seed, **overrides):
    """Deterministic small random circuit for cross-validation tests."""
    rng = random.Random(seed)
    params = dict(num_inputs=4, num_gates=15, num_dffs=2, num_outputs=2)
    params.update(overrides)
    return random_circuit(rng, name=f"fix{seed}", **params)


@pytest.fixture
def small_circuit():
    return make_circuit(1234)
