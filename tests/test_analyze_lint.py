"""Netlist lint: seeded defects are found with locations, benchmarks are clean."""

import pytest

from repro.analyze import (
    Diagnostic,
    has_findings,
    lint_bench_text,
    lint_circuit,
    lint_path,
    worst_severity,
)
from repro.circuit.library import S27_BENCH, available_circuits, load

#: One netlist seeding most defect classes at known lines.
SEEDED_BAD = """\
INPUT(a)
INPUT(unused)
OUTPUT(z)
OUTPUT(z)
OUTPUT(ghost)
g1 = AND(g2, a)
g2 = NOT(g1)
orphan = OR(a, a)
z = NAND(a, missing)
z = NAND(a, a)
q = DFF(q)
"""

#: Benchmarks whose full-scale SCOAP pass is too slow for a unit test.
_REDUCED_SCALE = {"s1423": 0.5, "s5378": 0.15, "s35932": 0.02}


def _codes(diagnostics):
    return {d.code for d in diagnostics}


def _by_code(diagnostics, code):
    found = [d for d in diagnostics if d.code == code]
    assert found, f"no {code!r} diagnostic in {[d.format() for d in diagnostics]}"
    return found


class TestDiagnostic:
    def test_format_carries_location_severity_code(self):
        diagnostic = Diagnostic("error", "undriven-net", "boom", "ckt", 7)
        assert diagnostic.format() == "ckt:7: error: boom [undriven-net]"
        assert diagnostic.location == "ckt:7"

    def test_lineless_location_is_just_the_file(self):
        diagnostic = Diagnostic("info", "scoap-extreme", "msg", "ckt", 0)
        assert diagnostic.location == "ckt"

    def test_worst_severity_and_thresholds(self):
        diagnostics = [
            Diagnostic("info", "a", "m"),
            Diagnostic("warning", "b", "m"),
        ]
        assert worst_severity(diagnostics) == "warning"
        assert worst_severity([]) is None
        assert not has_findings(diagnostics, fail_on="error")
        assert has_findings(diagnostics, fail_on="warning")
        assert has_findings(diagnostics, fail_on="info")


class TestSeededDefects:
    @pytest.fixture(scope="class")
    def diagnostics(self):
        return lint_bench_text(SEEDED_BAD, "bad")

    def test_undriven_net_error_with_line(self, diagnostics):
        (finding,) = _by_code(diagnostics, "undriven-net")
        assert finding.severity == "error"
        assert "'missing'" in finding.message
        assert (finding.file, finding.line) == ("bad", 9)

    def test_combinational_cycle_names_a_path(self, diagnostics):
        (finding,) = _by_code(diagnostics, "combinational-cycle")
        assert finding.severity == "error"
        assert "cycle:" in finding.message
        assert "g1" in finding.message and "g2" in finding.message

    def test_duplicate_definition_error_points_at_both_lines(self, diagnostics):
        (finding,) = _by_code(diagnostics, "duplicate-definition")
        assert finding.severity == "error"
        assert "'z'" in finding.message
        assert finding.line == 10
        assert "line 9" in finding.message

    def test_duplicate_output_warning(self, diagnostics):
        (finding,) = _by_code(diagnostics, "duplicate-output")
        assert finding.severity == "warning"
        assert finding.line == 4

    def test_undefined_output_error(self, diagnostics):
        (finding,) = _by_code(diagnostics, "undefined-output")
        assert "'ghost'" in finding.message
        assert finding.line == 5

    def test_unused_input_and_dangling_net_warnings(self, diagnostics):
        (unused,) = _by_code(diagnostics, "unused-input")
        assert "'unused'" in unused.message and unused.line == 2
        (dangling,) = _by_code(diagnostics, "dangling-net")
        assert "'orphan'" in dangling.message and dangling.line == 8

    def test_dff_self_loop_warning(self, diagnostics):
        (finding,) = _by_code(diagnostics, "dff-self-loop")
        assert "'q'" in finding.message and finding.line == 11

    def test_all_findings_reported_at_once(self, diagnostics):
        assert _codes(diagnostics) >= {
            "undriven-net",
            "combinational-cycle",
            "duplicate-definition",
            "duplicate-output",
            "undefined-output",
            "unused-input",
            "dangling-net",
            "dff-self-loop",
        }

    def test_sorted_by_line(self, diagnostics):
        lines = [d.line for d in diagnostics if d.line]
        assert lines == sorted(lines)


class TestLenientParse:
    def test_unparsable_line_is_a_diagnostic_not_an_exception(self):
        diagnostics = lint_bench_text("INPUT(a)\nwhat is this\nOUTPUT(a)\n", "junk")
        assert worst_severity(diagnostics) == "error"
        assert any(d.line == 2 for d in diagnostics)

    def test_no_outputs_reported(self):
        diagnostics = lint_bench_text("INPUT(a)\ng = NOT(a)\n", "noout")
        assert "no-outputs" in _codes(diagnostics)

    def test_bad_arity_dff(self):
        diagnostics = lint_bench_text(
            "INPUT(a)\nINPUT(b)\nOUTPUT(q)\nq = DFF(a, b)\n", "arity"
        )
        assert "bad-arity" in _codes(diagnostics)


class TestCleanBenchmarks:
    def test_embedded_s27_clean_at_error_tier(self):
        diagnostics = lint_bench_text(S27_BENCH, "s27")
        assert not has_findings(diagnostics, fail_on="error")

    @pytest.mark.parametrize("name", available_circuits())
    def test_shipped_benchmark_has_no_errors(self, name):
        circuit = load(name, scale=_REDUCED_SCALE.get(name, 1.0))
        diagnostics = lint_circuit(circuit)
        errors = [d for d in diagnostics if d.severity == "error"]
        assert not errors, [d.format() for d in errors]


class TestEntryPoints:
    def test_lint_path_uses_file_stem_as_location(self, tmp_path):
        path = tmp_path / "mini.bench"
        path.write_text("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\nw = NOT(z)\n")
        diagnostics = lint_path(str(path))
        (finding,) = _by_code(diagnostics, "dangling-net")
        assert finding.file == "mini"
        assert finding.line == 4

    def test_lint_circuit_matches_bench_text_graph_findings(self):
        from repro.circuit.bench import parse_bench

        circuit = parse_bench(S27_BENCH, name="s27")
        from_circuit = _codes(lint_circuit(circuit))
        from_text = _codes(lint_bench_text(S27_BENCH, "s27"))
        assert from_circuit == from_text

    def test_semantic_checks_skipped_when_graph_is_broken(self):
        # A netlist that cannot build must still produce its graph
        # diagnostics without the semantic pass exploding.
        diagnostics = lint_bench_text("OUTPUT(z)\nz = AND(z, z)\n", "loop")
        assert worst_severity(diagnostics) == "error"
        assert "scoap-extreme" not in _codes(diagnostics)
