"""snapshot()/restore() round-trips on the transition and event engines.

The stuck-at engine's round-trip is covered by the checkpoint tests in
``test_robust.py``; these tests close the gap for the other two stateful
engines, asserting the contract the checkpoint subsystem depends on: a
restored simulator continues *bit-identically* — detections, work
counters and memory statistics included — to one that was never
interrupted.
"""

import copy

import pytest

from repro.circuit.library import load
from repro.concurrent.event_engine import ConcurrentEventFaultSimulator
from repro.concurrent.options import SimOptions
from repro.concurrent.transition_engine import TransitionFaultSimulator
from repro.harness.runner import workload_tests

PERIOD = 40


@pytest.fixture(scope="module")
def s27():
    return load("s27")


@pytest.fixture(scope="module")
def s27_tests():
    return workload_tests("s27")


def _assert_same_state(left, right):
    """Full-state equality: results, counters, and memory statistics."""
    assert left.cycle == right.cycle
    assert left.good == right.good
    assert left.vis == right.vis
    assert left.detected == right.detected
    assert left.potentially_detected == right.potentially_detected
    assert left.counters == right.counters
    assert left.memory.peak_bytes == right.memory.peak_bytes
    assert left.memory.peak_elements == right.memory.peak_elements


class TestTransitionEngine:
    @pytest.mark.parametrize("split", [False, True])
    def test_mid_run_roundtrip(self, s27, s27_tests, split):
        options = SimOptions(split_lists=split)
        straight = TransitionFaultSimulator(s27, options=options)
        resumed = TransitionFaultSimulator(s27, options=options)
        vectors = s27_tests.vectors

        for vector in vectors[:7]:
            straight.step(vector)
            resumed.step(vector)

        state = resumed.snapshot()
        # Drive the to-be-restored simulator off into the weeds first, so
        # the test proves restore() rolls back rather than merely not
        # disturbing an already-identical state.
        for vector in vectors[7:12]:
            resumed.step(vector)
        resumed.restore(state)
        _assert_same_state(straight, resumed)

        for vector in vectors[7:]:
            straight.step(vector)
            resumed.step(vector)
        _assert_same_state(straight, resumed)

    def test_snapshot_is_isolated_from_later_mutation(self, s27, s27_tests):
        simulator = TransitionFaultSimulator(s27)
        for vector in s27_tests.vectors[:5]:
            simulator.step(vector)
        state = simulator.snapshot()
        frozen = copy.deepcopy(state)
        for vector in s27_tests.vectors[5:10]:
            simulator.step(vector)
        # Stepping on must not reach back into the captured state.
        assert state["cycle"] == frozen["cycle"]
        assert state["vis"] == frozen["vis"]
        assert state["detected"] == frozen["detected"]
        assert state["counters"] == frozen["counters"]

    def test_counters_and_memory_restored_exactly(self, s27, s27_tests):
        simulator = TransitionFaultSimulator(s27)
        for vector in s27_tests.vectors[:6]:
            simulator.step(vector)
        counters = copy.copy(simulator.counters)
        peak = simulator.memory.peak_bytes
        state = simulator.snapshot()
        for vector in s27_tests.vectors[6:10]:
            simulator.step(vector)
        assert simulator.counters != counters  # work really happened
        simulator.restore(state)
        assert simulator.counters == counters
        assert simulator.memory.peak_bytes == peak


class TestEventEngine:
    def test_mid_run_roundtrip(self, s27, s27_tests):
        straight = ConcurrentEventFaultSimulator(s27)
        resumed = ConcurrentEventFaultSimulator(s27)
        vectors = s27_tests.vectors

        for vector in vectors[:7]:
            straight.run_cycle(vector, PERIOD)
            resumed.run_cycle(vector, PERIOD)

        state = resumed.snapshot()
        for vector in vectors[7:12]:
            resumed.run_cycle(vector, PERIOD)
        resumed.restore(state)

        for vector in vectors[7:]:
            straight.run_cycle(vector, PERIOD)
            resumed.run_cycle(vector, PERIOD)

        _assert_same_state(straight, resumed)
        # Event-engine specifics: simulated time and the timing wheel.
        assert straight.time == resumed.time

    def test_timing_wheel_survives_roundtrip(self, s27, s27_tests):
        """Snapshot mid-run while events may be pending, restore into a
        *fresh* simulator, and both must finish identically."""
        donor = ConcurrentEventFaultSimulator(s27)
        for vector in s27_tests.vectors[:9]:
            donor.run_cycle(vector, PERIOD)
        state = donor.snapshot()

        heir = ConcurrentEventFaultSimulator(s27)
        heir.restore(state)
        _assert_same_state(donor, heir)

        for vector in s27_tests.vectors[9:]:
            donor.run_cycle(vector, PERIOD)
            heir.run_cycle(vector, PERIOD)
        _assert_same_state(donor, heir)

    def test_counters_and_memory_restored_exactly(self, s27, s27_tests):
        simulator = ConcurrentEventFaultSimulator(s27)
        for vector in s27_tests.vectors[:6]:
            simulator.run_cycle(vector, PERIOD)
        counters = copy.copy(simulator.counters)
        peak_bytes = simulator.memory.peak_bytes
        peak_elements = simulator.memory.peak_elements
        state = simulator.snapshot()
        for vector in s27_tests.vectors[6:10]:
            simulator.run_cycle(vector, PERIOD)
        assert simulator.counters != counters
        simulator.restore(state)
        assert simulator.counters == counters
        assert simulator.memory.peak_bytes == peak_bytes
        assert simulator.memory.peak_elements == peak_elements
