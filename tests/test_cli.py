"""Command-line interface tests (in-process, via cli.main)."""

import pytest

from repro.cli import main


class TestStats:
    def test_stats_s27(self, capsys):
        assert main(["stats", "s27"]) == 0
        out = capsys.readouterr().out
        assert "s27" in out
        assert "collapsed stuck-at faults" in out

    def test_stats_from_file(self, tmp_path, capsys):
        path = tmp_path / "c.bench"
        path.write_text("INPUT(a)\nOUTPUT(g)\ng = NOT(a)\n")
        assert main(["stats", str(path)]) == 0
        assert "c" in capsys.readouterr().out


class TestSimulate:
    def test_random_patterns(self, capsys):
        assert main(["simulate", "s27", "--random-patterns", "50", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "csim-MV" in out
        assert "faults" in out

    def test_engine_choice(self, capsys):
        assert main(["simulate", "s27", "--engine", "PROOFS",
                     "--random-patterns", "20"]) == 0
        assert "PROOFS" in capsys.readouterr().out

    def test_verbose_lists_detections(self, capsys):
        assert main(["simulate", "s27", "--random-patterns", "50",
                     "--seed", "3", "--verbose"]) == 0
        assert "cycle" in capsys.readouterr().out

    def test_tests_file(self, tmp_path, capsys):
        vectors = tmp_path / "t.vec"
        vectors.write_text("0000\n1111\n0101\n")
        assert main(["simulate", "s27", "--tests", str(vectors)]) == 0
        assert "3 vectors" in capsys.readouterr().out

    def test_bad_engine_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "s27", "--engine", "bogus"])


class TestTransition:
    def test_runs(self, capsys):
        assert main(["transition", "s27", "--random-patterns", "30"]) == 0
        assert "csim-T" in capsys.readouterr().out


class TestGenerateTests:
    def test_writes_vectors_to_stdout(self, capsys):
        assert main(["generate-tests", "s27", "--target", "0.5"]) == 0
        captured = capsys.readouterr()
        lines = [line for line in captured.out.splitlines() if line]
        assert lines, "no vectors produced"
        assert all(set(line) <= set("01X") for line in lines)
        assert "coverage" in captured.err

    def test_output_file_roundtrips(self, tmp_path, capsys):
        out = tmp_path / "t.vec"
        assert main(["generate-tests", "s27", "--target", "0.5",
                     "-o", str(out)]) == 0
        assert main(["simulate", "s27", "--tests", str(out)]) == 0
        assert "faults" in capsys.readouterr().out


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_circuit_raises(self):
        with pytest.raises(KeyError):
            main(["stats", "s99999"])
