"""Command-line interface tests (in-process, via cli.main)."""

import re

import pytest

from repro.cli import main


def _coverage_line(text):
    """The engine-independent heart of a run summary: detections,
    fault count, coverage and vector count (wall time excluded)."""
    match = re.search(r"(\d+/\d+ faults \([\d.]+%\) in \d+ vectors)", text)
    assert match, f"no summary line in {text!r}"
    return match.group(1)


class TestStats:
    def test_stats_s27(self, capsys):
        assert main(["stats", "s27"]) == 0
        out = capsys.readouterr().out
        assert "s27" in out
        assert "collapsed stuck-at faults" in out

    def test_stats_from_file(self, tmp_path, capsys):
        path = tmp_path / "c.bench"
        path.write_text("INPUT(a)\nOUTPUT(g)\ng = NOT(a)\n")
        assert main(["stats", str(path)]) == 0
        assert "c" in capsys.readouterr().out


class TestSimulate:
    def test_random_patterns(self, capsys):
        assert main(["simulate", "s27", "--random-patterns", "50", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "csim-MV" in out
        assert "faults" in out

    def test_engine_choice(self, capsys):
        assert main(["simulate", "s27", "--engine", "PROOFS",
                     "--random-patterns", "20"]) == 0
        assert "PROOFS" in capsys.readouterr().out

    def test_verbose_lists_detections(self, capsys):
        assert main(["simulate", "s27", "--random-patterns", "50",
                     "--seed", "3", "--verbose"]) == 0
        assert "cycle" in capsys.readouterr().out

    def test_tests_file(self, tmp_path, capsys):
        vectors = tmp_path / "t.vec"
        vectors.write_text("0000\n1111\n0101\n")
        assert main(["simulate", "s27", "--tests", str(vectors)]) == 0
        assert "3 vectors" in capsys.readouterr().out

    def test_bad_engine_rejected(self, capsys):
        assert main(["simulate", "s27", "--engine", "bogus"]) == 2
        assert "invalid choice" in capsys.readouterr().err


class TestTransition:
    def test_runs(self, capsys):
        assert main(["transition", "s27", "--random-patterns", "30"]) == 0
        assert "csim-T" in capsys.readouterr().out


class TestLint:
    """Exit-code contract: 0 clean, 1 findings, 2 usage/parse errors."""

    def test_clean_circuit_exits_0(self, capsys):
        assert main(["lint", "s27"]) == 0
        assert "scoap" in capsys.readouterr().out  # infos still printed

    def test_fail_on_info_exits_1(self, capsys):
        assert main(["lint", "s27", "--fail-on", "info"]) == 1
        capsys.readouterr()

    def test_findings_exit_1_with_locations(self, tmp_path, capsys):
        path = tmp_path / "bad.bench"
        path.write_text("INPUT(a)\nOUTPUT(z)\nz = AND(a, missing)\n")
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "bad:3: error:" in out
        assert "undriven-net" in out

    def test_cycle_path_reported(self, tmp_path, capsys):
        path = tmp_path / "loop.bench"
        path.write_text(
            "INPUT(a)\nOUTPUT(g1)\ng1 = AND(g2, a)\ng2 = NOT(g1)\n"
        )
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "combinational-cycle" in out
        assert "->" in out

    def test_warnings_pass_default_threshold(self, tmp_path, capsys):
        path = tmp_path / "warn.bench"
        path.write_text("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\nw = NOT(z)\n")
        assert main(["lint", str(path)]) == 0  # dangling net is a warning
        assert main(["lint", str(path), "--fail-on", "warning"]) == 1
        capsys.readouterr()

    def test_unknown_circuit_exits_2(self, capsys):
        assert main(["lint", "s99999"]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_bad_flag_usage_exits_nonzero(self, capsys):
        assert main(["lint", "s27", "--fail-on", "catastrophe"]) == 2
        capsys.readouterr()

    def test_json_format(self, capsys):
        import json

        assert main(["lint", "s27", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total"] == len(payload["diagnostics"])
        assert all(
            {"severity", "code", "message", "file", "line"} <= set(d)
            for d in payload["diagnostics"]
        )

    @pytest.mark.parametrize("name", ("s298", "s344", "s1238"))
    def test_shipped_benchmarks_clean(self, name, capsys):
        assert main(["lint", name]) == 0
        capsys.readouterr()


class TestAnalyzeFlags:
    def test_prune_untestable_identical_detections(self, capsys):
        base = ["simulate", "s386", "--random-patterns", "30", "--seed", "3"]
        assert main(base) == 0
        full = capsys.readouterr().out
        assert main(base + ["--prune-untestable"]) == 0
        captured = capsys.readouterr()
        assert "pruned" in captured.err
        # Same detections; only the denominator (universe size) shrinks.
        detected = full.split("/")[0]
        assert captured.out.split("/")[0] == detected

    def test_sanitize_runs_clean(self, capsys):
        assert main(["simulate", "s27", "--random-patterns", "30",
                     "--sanitize"]) == 0
        assert "csim-MV" in capsys.readouterr().out

    def test_sanitize_requires_concurrent_engine(self, capsys):
        assert main(["simulate", "s27", "--engine", "PROOFS",
                     "--sanitize"]) == 2
        assert "concurrent engine" in capsys.readouterr().err

    def test_sanitize_and_ladder_exit_2(self, capsys):
        assert main(["simulate", "s27", "--ladder", "--sanitize"]) == 2
        assert "--sanitize" in capsys.readouterr().err

    def test_transition_flags_compose(self, capsys):
        assert main(["transition", "s386", "--random-patterns", "20",
                     "--prune-untestable", "--sanitize"]) == 0
        captured = capsys.readouterr()
        assert "pruned" in captured.err
        assert "csim-TV" in captured.out

    def test_pruned_checkpoint_resume_roundtrip(self, tmp_path, capsys):
        base = ["simulate", "s386", "--random-patterns", "30", "--seed", "3",
                "--prune-untestable"]
        assert main(base) == 0
        straight = _coverage_line(capsys.readouterr().out)
        path = str(tmp_path / "ck.pkl")
        assert main(base + ["--checkpoint", path, "--max-cycles", "10"]) == 0
        capsys.readouterr()
        assert main(base + ["--checkpoint", path, "--resume"]) == 0
        assert _coverage_line(capsys.readouterr().out) == straight


class TestGenerateTests:
    def test_writes_vectors_to_stdout(self, capsys):
        assert main(["generate-tests", "s27", "--target", "0.5"]) == 0
        captured = capsys.readouterr()
        lines = [line for line in captured.out.splitlines() if line]
        assert lines, "no vectors produced"
        assert all(set(line) <= set("01X") for line in lines)
        assert "coverage" in captured.err

    def test_output_file_roundtrips(self, tmp_path, capsys):
        out = tmp_path / "t.vec"
        assert main(["generate-tests", "s27", "--target", "0.5",
                     "-o", str(out)]) == 0
        assert main(["simulate", "s27", "--tests", str(out)]) == 0
        assert "faults" in capsys.readouterr().out


class TestParser:
    """Parse-time failures return 2 with usage — never a traceback."""

    def test_missing_command_exits_2_with_usage(self, capsys):
        assert main([]) == 2
        assert "usage:" in capsys.readouterr().err

    def test_unknown_subcommand_exits_2_with_usage(self, capsys):
        assert main(["frobnicate"]) == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "invalid choice" in err

    def test_version_prints_and_exits_0(self, capsys):
        assert main(["--version"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert out.split()[1][0].isdigit()

    def test_serve_help_smoke(self, capsys):
        assert main(["serve", "--help"]) == 0
        out = capsys.readouterr().out
        assert "--queue-limit" in out
        assert "--workers" in out

    def test_unknown_circuit_exits_2(self, capsys):
        assert main(["stats", "s99999"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "s99999" in err


class TestErrorHandling:
    """Anticipated failures exit 2 with a one-line message, no traceback."""

    def test_missing_tests_file_exits_2(self, capsys):
        assert main(["simulate", "s27", "--tests", "/no/such/file.vec"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "file.vec" in err

    def test_bad_bench_file_exits_2_with_line_context(self, tmp_path, capsys):
        path = tmp_path / "broken.bench"
        path.write_text("INPUT(a)\ng = FROB(a)\nOUTPUT(g)\n")
        assert main(["stats", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "broken:2:" in err  # file:line context survives to the user

    def test_resume_without_checkpoint_exits_2(self, capsys):
        assert main(["simulate", "s27", "--resume"]) == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_ladder_and_checkpoint_exit_2(self, tmp_path, capsys):
        assert main(["simulate", "s27", "--ladder",
                     "--checkpoint", str(tmp_path / "ck.pkl")]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_resume_from_corrupt_checkpoint_exits_2(self, tmp_path, capsys):
        path = tmp_path / "ck.pkl"
        assert main(["simulate", "s27", "--random-patterns", "40",
                     "--checkpoint", str(path)]) == 0
        capsys.readouterr()
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        assert main(["simulate", "s27", "--random-patterns", "40",
                     "--checkpoint", str(path), "--resume"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "truncated or corrupt" in err


class TestCheckpointFlow:
    def test_truncated_then_resumed_matches_straight_run(self, tmp_path, capsys):
        base = ["simulate", "s27", "--random-patterns", "60", "--seed", "7"]
        assert main(base) == 0
        straight = _coverage_line(capsys.readouterr().out)

        path = str(tmp_path / "ck.pkl")
        assert main(base + ["--checkpoint", path, "--max-cycles", "20"]) == 0
        first_leg = capsys.readouterr().out
        assert "[truncated: cycle budget" in first_leg

        assert main(base + ["--checkpoint", path, "--resume"]) == 0
        resumed = capsys.readouterr().out
        assert "truncated" not in resumed
        assert _coverage_line(resumed) == straight

    def test_transition_checkpoint_roundtrip(self, tmp_path, capsys):
        base = ["transition", "s27", "--random-patterns", "40"]
        assert main(base) == 0
        straight = _coverage_line(capsys.readouterr().out)

        path = str(tmp_path / "ck.pkl")
        assert main(base + ["--checkpoint", path, "--max-cycles", "15"]) == 0
        capsys.readouterr()
        assert main(base + ["--checkpoint", path, "--resume"]) == 0
        assert _coverage_line(capsys.readouterr().out) == straight

    def test_interrupt_exits_130_with_resume_hint(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.concurrent.engine import ConcurrentFaultSimulator

        path = str(tmp_path / "ck.pkl")
        real_step = ConcurrentFaultSimulator.step
        calls = {"n": 0}

        def interrupting_step(self, vector):
            calls["n"] += 1
            if calls["n"] == 15:
                raise KeyboardInterrupt
            return real_step(self, vector)

        monkeypatch.setattr(ConcurrentFaultSimulator, "step", interrupting_step)
        argv = ["simulate", "s27", "--random-patterns", "60", "--seed", "7",
                "--checkpoint", path, "--checkpoint-every", "4"]
        assert main(argv) == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "resume with" in err
        assert "--resume" in err

        monkeypatch.setattr(ConcurrentFaultSimulator, "step", real_step)
        assert main(["simulate", "s27", "--random-patterns", "60", "--seed", "7"]) == 0
        straight = _coverage_line(capsys.readouterr().out)
        assert main(argv + ["--resume"]) == 0
        assert _coverage_line(capsys.readouterr().out) == straight

    def test_interrupt_without_checkpoint_exits_130(self, capsys, monkeypatch):
        from repro.concurrent.engine import ConcurrentFaultSimulator

        def exploding_step(self, vector):
            raise KeyboardInterrupt

        monkeypatch.setattr(ConcurrentFaultSimulator, "step", exploding_step)
        assert main(["simulate", "s27", "--random-patterns", "20"]) == 130
        assert "progress lost" in capsys.readouterr().err


class TestBudgetsAndLadder:
    def test_max_cycles_flags_truncation(self, capsys):
        assert main(["simulate", "s27", "--random-patterns", "50",
                     "--max-cycles", "10"]) == 0
        out = capsys.readouterr().out
        assert "in 10 vectors" in out
        assert "[truncated: cycle budget" in out

    def test_ladder_clean_run(self, capsys):
        assert main(["simulate", "s27", "--random-patterns", "50", "--seed", "3",
                     "--ladder"]) == 0
        out = capsys.readouterr().out
        assert "degraded" not in out  # honest engines pass the audit

    def test_tables_checkpoint_resume(self, tmp_path, capsys):
        path = str(tmp_path / "tables.pkl")
        base = ["tables", "--quick", "--scale", "0.05", "--deterministic"]
        assert main(base + ["--checkpoint", path]) == 0
        first = capsys.readouterr().out
        assert main(base + ["--checkpoint", path, "--resume"]) == 0
        assert capsys.readouterr().out == first
