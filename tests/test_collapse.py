"""Structural fault collapsing: exactness, composition and serve parity.

The contract under test (see ``repro.analyze.collapse``): simulating only
the equivalence-class representatives of the *full* stuck-at universe and
expanding the detections back through the class map is bit-identical to
simulating the full universe — per engine, per shard count, with and
without untestable-fault pruning, and across a kill/resume.  Dominance
proposals are confirmed against the serial oracle before expansion may
claim them, so dominance never over-claims either.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analyze import (
    CollapseAuditError,
    audit_expansion,
    collapse_universe,
    expand_verified,
)
from repro.circuit.generate import random_circuit
from repro.circuit.library import load
from repro.faults.transition import all_transition_faults
from repro.faults.universe import all_stuck_at_faults, stuck_at_universe
from repro.harness.runner import run_stuck_at, run_transition
from repro.parallel import run_parallel
from repro.patterns.random_gen import random_sequence
from repro.robust.budget import Budget
from repro.robust.runner import run_checkpointed


def _same_detections(left, right):
    assert left.detected == right.detected
    assert left.potentially_detected == right.potentially_detected
    assert left.num_faults == right.num_faults


class TestClasses:
    def test_full_universe_classes_match_legacy_collapse(self):
        """The legacy pre-collapsed universe is exactly the equivalence
        representatives of the full universe (paper Table 2 consistency)."""
        for name in ("s27", "s298", "s641"):
            circuit = load(name)
            collapsed = collapse_universe(circuit)
            assert sorted(collapsed.representatives) == sorted(
                stuck_at_universe(circuit)
            )

    def test_map_covers_universe_and_reps_are_fixed_points(self, s27):
        collapsed = collapse_universe(s27)
        universe = set(all_stuck_at_faults(s27))
        assert set(collapsed.universe) == universe
        assert set(collapsed.member_to_rep) == universe
        reps = set(collapsed.representatives)
        assert reps <= universe
        for member, rep in collapsed.member_to_rep.items():
            assert rep in reps
        for rep in reps:
            assert collapsed.member_to_rep[rep] == rep

    def test_ratio_meets_acceptance_floor(self):
        """>= 30% reduction on at least two library circuits."""
        ratios = {
            name: collapse_universe(load(name)).ratio for name in ("s27", "s298")
        }
        assert all(ratio >= 0.30 for ratio in ratios.values()), ratios

    def test_dominance_collapses_strictly_more(self, s27):
        equivalence = collapse_universe(s27, mode="equivalence")
        dominance = collapse_universe(s27, mode="dominance")
        assert dominance.num_representatives < equivalence.num_representatives
        assert dominance.implied_by and not equivalence.implied_by
        assert dominance.num_conservative > 0

    def test_fingerprints_distinguish_modes(self, s27):
        equivalence = collapse_universe(s27, mode="equivalence")
        dominance = collapse_universe(s27, mode="dominance")
        assert equivalence.fingerprint_material() != dominance.fingerprint_material()
        again = collapse_universe(s27, mode="equivalence")
        assert again.fingerprint_material() == equivalence.fingerprint_material()

    def test_unknown_mode_rejected(self, s27):
        with pytest.raises(ValueError, match="mode"):
            collapse_universe(s27, mode="bogus")

    def test_transition_collapse_projects_onto_universe(self, s27):
        collapsed = collapse_universe(s27, transition=True)
        universe = set(all_transition_faults(s27))
        assert set(collapsed.universe) == universe
        assert set(collapsed.representatives) <= universe
        assert collapsed.num_representatives <= collapsed.num_universe


class TestBitIdentity:
    @pytest.mark.parametrize("engine", ["csim", "csim-MV", "PROOFS", "vsim"])
    def test_equivalence_expansion_exact_per_engine(self, engine):
        circuit = load("s298")
        tests = random_sequence(circuit, 48, seed=7)
        universe = list(all_stuck_at_faults(circuit))
        reference = run_stuck_at(circuit, tests, engine, faults=universe)
        collapsed = collapse_universe(circuit, universe)
        reps = run_stuck_at(
            circuit, tests, engine, faults=list(collapsed.representatives)
        )
        _same_detections(reference, collapsed.expand(reps))

    @pytest.mark.parametrize("jobs", [2, 3])
    def test_equivalence_composes_with_jobs(self, jobs):
        circuit = load("s298")
        tests = random_sequence(circuit, 40, seed=11)
        universe = list(all_stuck_at_faults(circuit))
        reference = run_stuck_at(circuit, tests, "csim-MV", faults=universe)
        collapsed = collapse_universe(circuit, universe)
        reps = run_parallel(
            circuit,
            tests,
            "csim-MV",
            faults=list(collapsed.representatives),
            jobs=jobs,
        )
        _same_detections(reference, collapsed.expand(reps))

    def test_equivalence_composes_with_prune(self):
        from repro.analyze import prune_untestable

        circuit = load("s298")
        tests = random_sequence(circuit, 40, seed=5)
        pruned = list(prune_untestable(circuit, all_stuck_at_faults(circuit)).kept)
        reference = run_stuck_at(circuit, tests, "csim-MV", faults=pruned)
        collapsed = collapse_universe(circuit, pruned)
        reps = run_stuck_at(
            circuit, tests, "csim-MV", faults=list(collapsed.representatives)
        )
        _same_detections(reference, collapsed.expand(reps))

    def test_transition_expansion_exact(self, s27, s27_tests):
        reference = run_transition(s27, s27_tests)
        collapsed = collapse_universe(s27, transition=True)
        reps = run_transition(
            s27, s27_tests, faults=list(collapsed.representatives)
        )
        _same_detections(reference, collapsed.expand(reps))

    def test_dominance_never_overclaims_and_is_cycle_exact(self):
        circuit = load("s298")
        tests = random_sequence(circuit, 48, seed=7)
        universe = list(all_stuck_at_faults(circuit))
        reference = run_stuck_at(circuit, tests, "csim-MV", faults=universe)
        collapsed = collapse_universe(circuit, universe, mode="dominance")
        reps = run_stuck_at(
            circuit, tests, "csim-MV", faults=list(collapsed.representatives)
        )
        expanded, report = expand_verified(
            circuit, tests.vectors, collapsed, reps
        )
        # Never a false detection, and confirmed claims carry the exact
        # cycle; possibly fewer faults (impliers the vectors missed).
        assert set(expanded.detected.items()) <= set(reference.detected.items())
        assert expanded.num_faults == reference.num_faults
        assert report.checked > 0
        assert report.confirmed + len(report.refuted) <= report.checked
        audit = audit_expansion(
            circuit, tests.vectors, collapsed, reps, sample=6, strict=True
        )
        assert audit.ok and audit.checked > 0

    def test_unverified_dominance_expand_refused(self, s27):
        collapsed = collapse_universe(s27, mode="dominance")
        tests = random_sequence(s27, 10, seed=3)
        reps = run_stuck_at(
            s27, tests, "csim-MV", faults=list(collapsed.representatives)
        )
        with pytest.raises(ValueError, match="expand_verified"):
            collapsed.expand(reps)

    def _doctor_in_false_proposal(self, circuit, tests):
        """A collapse map whose implied_by claims an undetectable fault."""
        import dataclasses

        collapsed = collapse_universe(circuit, mode="dominance")
        reps = run_stuck_at(
            circuit, tests, "csim-MV", faults=list(collapsed.representatives)
        )
        detected_reps = [f for f in collapsed.representatives if f in reps.detected]
        undetected = [
            f
            for f in collapsed.representatives
            if f not in reps.detected and f not in reps.potentially_detected
        ]
        if not detected_reps or not undetected:
            pytest.skip("workload detects everything or nothing")
        doctored = dict(collapsed.implied_by)
        doctored[undetected[0]] = (detected_reps[0],)
        pruned_map = {
            member: rep
            for member, rep in collapsed.member_to_rep.items()
            if member != undetected[0]
        }
        bogus = dataclasses.replace(
            collapsed, implied_by=doctored, member_to_rep=pruned_map
        )
        return bogus, reps, undetected[0]

    def test_audit_strict_raises_on_refutation(self, s27, s27_tests):
        """A doctored implied_by entry must be caught by the oracle."""
        bogus, reps, _victim = self._doctor_in_false_proposal(s27, s27_tests)
        with pytest.raises(CollapseAuditError):
            audit_expansion(
                s27, s27_tests.vectors, bogus, reps, sample=0, strict=True
            )

    def test_verified_expansion_drops_refuted_proposals(self, s27, s27_tests):
        """The same doctored claim never reaches the expanded result."""
        bogus, reps, victim = self._doctor_in_false_proposal(s27, s27_tests)
        expanded, report = expand_verified(s27, s27_tests.vectors, bogus, reps)
        assert victim in report.refuted
        assert victim not in expanded.detected


class TestResume:
    def test_kill_resume_with_collapse_bit_identical(self, tmp_path):
        circuit = load("s298")
        tests = random_sequence(circuit, 48, seed=9)
        universe = list(all_stuck_at_faults(circuit))
        reference = run_stuck_at(circuit, tests, "csim-MV", faults=universe)
        collapsed = collapse_universe(circuit, universe)
        path = str(tmp_path / "ck.pkl")
        partial = run_checkpointed(
            circuit,
            tests,
            "csim-MV",
            faults=list(collapsed.representatives),
            budget=Budget(max_cycles=16),
            checkpoint_path=path,
            checkpoint_every=4,
            fingerprint_extra=collapsed.fingerprint_material(),
        )
        assert partial.truncated
        resumed = run_checkpointed(
            circuit,
            tests,
            "csim-MV",
            faults=list(collapsed.representatives),
            checkpoint_path=path,
            resume=True,
            fingerprint_extra=collapsed.fingerprint_material(),
        )
        _same_detections(reference, collapsed.expand(resumed))

    def test_resume_refused_across_collapse_modes(self, tmp_path):
        from repro.robust.checkpoint import CheckpointError

        circuit = load("s27")
        tests = random_sequence(circuit, 30, seed=2)
        equivalence = collapse_universe(circuit, mode="equivalence")
        dominance = collapse_universe(circuit, mode="dominance")
        path = str(tmp_path / "ck.pkl")
        run_checkpointed(
            circuit,
            tests,
            "csim-MV",
            faults=list(equivalence.representatives),
            checkpoint_path=path,
            fingerprint_extra=equivalence.fingerprint_material(),
        )
        with pytest.raises(CheckpointError):
            run_checkpointed(
                circuit,
                tests,
                "csim-MV",
                faults=list(dominance.representatives),
                checkpoint_path=path,
                resume=True,
                fingerprint_extra=dominance.fingerprint_material(),
            )


class TestProperty:
    @settings(
        max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        seed=st.integers(0, 2**20),
        num_gates=st.integers(5, 16),
        num_dffs=st.integers(0, 3),
        engine=st.sampled_from(["csim", "csim-MV", "vsim"]),
        jobs=st.sampled_from([1, 2]),
        prune=st.booleans(),
    )
    def test_collapse_then_expand_is_identity(
        self, seed, num_gates, num_dffs, engine, jobs, prune
    ):
        circuit = random_circuit(
            random.Random(seed),
            num_inputs=3,
            num_gates=num_gates,
            num_dffs=num_dffs,
            num_outputs=2,
            name=f"col{seed}",
        )
        tests = random_sequence(circuit, 10, seed=seed)
        universe = list(all_stuck_at_faults(circuit))
        if prune:
            from repro.analyze import prune_untestable

            universe = list(prune_untestable(circuit, universe).kept)
        reference = run_parallel(
            circuit, tests, engine, faults=universe, jobs=jobs
        )
        collapsed = collapse_universe(circuit, universe)
        reps = run_parallel(
            circuit,
            tests,
            engine,
            faults=list(collapsed.representatives),
            jobs=jobs,
        )
        _same_detections(reference, collapsed.expand(reps))


class TestCli:
    def test_simulate_collapse_matches_plain_full_universe(self, capsys):
        from repro.cli import main

        base = ["simulate", "s298", "--random-patterns", "30", "--seed", "4"]
        assert main(base + ["--collapse"]) == 0
        collapsed_out = capsys.readouterr()
        assert main(base + ["--collapse", "dominance", "--jobs", "2"]) == 0
        dominance_out = capsys.readouterr()
        assert "collapse[equivalence]" in collapsed_out.err
        assert "collapse[dominance]" in dominance_out.err
        assert "collapse audit" in dominance_out.err

    def test_stats_reports_collapse_ratios(self, capsys):
        from repro.cli import main

        assert main(["stats", "s298"]) == 0
        out = capsys.readouterr().out
        assert "equivalence collapse ratio" in out
        assert "dominance representatives" in out


class TestServeParity:
    def _service(self, tmp_path):
        from repro.serve import FaultSimService, ServeConfig

        return FaultSimService(
            ServeConfig(state_dir=str(tmp_path / "state"), workers=0)
        )

    def test_collapse_job_blob_matches_full_universe_run(self, tmp_path):
        from repro.logic.values import value_to_char
        from repro.serve import serialize_result

        circuit = load("s298")
        tests = random_sequence(circuit, 40, seed=13)
        vectors = (
            "\n".join(
                "".join(value_to_char(v) for v in vector) for vector in tests
            )
            + "\n"
        )
        service = self._service(tmp_path)
        record, _ = service.submit(
            {"circuit": "s298", "vectors": vectors, "collapse": "equivalence"}
        )
        assert service.drain() == 1
        blob = service.result_bytes(record.job_id)
        reference = run_stuck_at(
            circuit, tests, "csim-MV", faults=list(all_stuck_at_faults(circuit))
        )
        assert blob == serialize_result(reference, circuit)

    def test_cache_key_separates_collapse_but_not_sanitize(self, tmp_path):
        service = self._service(tmp_path)
        base = {"circuit": "s27", "random_patterns": 20, "seed": 1}
        plain, _ = service.submit(dict(base))
        equivalence, _ = service.submit(dict(base, collapse="equivalence"))
        dominance, _ = service.submit(dict(base, collapse="dominance"))
        sanitized, _ = service.submit(dict(base, sanitize=True))
        keys = {
            service.store.get(record.job_id).cache_key
            for record in (plain, equivalence, dominance)
        }
        assert len(keys) == 3
        assert (
            service.store.get(sanitized.job_id).cache_key
            == service.store.get(plain.job_id).cache_key
        )

    def test_bad_spec_options_rejected(self, tmp_path):
        from repro.serve import SpecError

        service = self._service(tmp_path)
        with pytest.raises(SpecError, match="collapse"):
            service.submit({"circuit": "s27", "collapse": "bogus"})
        with pytest.raises(SpecError, match="sanitize"):
            service.submit(
                {"circuit": "s27", "engine": "PROOFS", "sanitize": True}
            )

    def test_spec_roundtrips_new_options(self):
        from repro.serve.spec import JobSpec

        payload = {
            "circuit": "s27",
            "random_patterns": 10,
            "collapse": "dominance",
            "sanitize": True,
        }
        spec = JobSpec.from_payload(payload)
        assert spec.collapse == "dominance" and spec.sanitize
        again = JobSpec.from_payload(spec.to_payload())
        assert again.collapse == "dominance" and again.sanitize
