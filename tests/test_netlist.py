"""Unit tests for the netlist model and builder validation."""

import pytest

from repro.circuit.netlist import CircuitBuilder, NetlistError, evaluate_gate
from repro.logic.tables import GateType
from repro.logic.values import ONE, X, ZERO


def tiny_builder():
    builder = CircuitBuilder("tiny")
    builder.add_input("a")
    builder.add_input("b")
    builder.add_gate("g", GateType.AND, ["a", "b"])
    builder.set_output("g")
    return builder


class TestBuilder:
    def test_basic_build(self):
        circuit = tiny_builder().build()
        assert len(circuit.inputs) == 2
        assert len(circuit.outputs) == 1
        assert circuit.gate("g").gtype is GateType.AND

    def test_duplicate_signal_rejected(self):
        builder = tiny_builder()
        with pytest.raises(NetlistError, match="defined twice"):
            builder.add_input("a")

    def test_undefined_fanin_rejected(self):
        builder = CircuitBuilder("bad")
        builder.add_input("a")
        builder.add_gate("g", GateType.BUF, ["missing"])
        builder.set_output("g")
        with pytest.raises(NetlistError, match="undefined signal"):
            builder.build()

    def test_no_outputs_rejected(self):
        builder = CircuitBuilder("noout")
        builder.add_input("a")
        builder.add_gate("g", GateType.BUF, ["a"])
        with pytest.raises(NetlistError, match="no primary outputs"):
            builder.build()

    def test_undefined_output_rejected(self):
        builder = tiny_builder()
        builder.set_output("nope")
        with pytest.raises(NetlistError, match="not a defined signal"):
            builder.build()

    def test_not_gate_arity_checked(self):
        builder = CircuitBuilder("bad")
        builder.add_input("a")
        builder.add_input("b")
        with pytest.raises(NetlistError, match="exactly one fanin"):
            builder.add_gate("g", GateType.NOT, ["a", "b"])

    def test_empty_fanin_rejected(self):
        builder = CircuitBuilder("bad")
        with pytest.raises(NetlistError, match="no fanin"):
            builder.add_gate("g", GateType.AND, [])

    def test_const_gates_take_no_fanin(self):
        builder = CircuitBuilder("c")
        builder.add_input("a")
        builder.add_gate("k", GateType.CONST1, [])
        builder.add_gate("g", GateType.AND, ["a", "k"])
        builder.set_output("g")
        circuit = builder.build()
        assert circuit.gate("k").arity == 0

    def test_source_gate_type_rejected_via_add_gate(self):
        builder = CircuitBuilder("bad")
        builder.add_input("a")
        with pytest.raises(NetlistError):
            builder.add_gate("g", GateType.DFF, ["a"])

    def test_duplicate_output_rejected(self):
        builder = tiny_builder()
        with pytest.raises(NetlistError, match="output 'g' declared twice"):
            builder.set_output("g")  # second time


class TestCircuitViews:
    def test_fanout_computed(self):
        builder = CircuitBuilder("fan")
        builder.add_input("a")
        builder.add_gate("g1", GateType.NOT, ["a"])
        builder.add_gate("g2", GateType.NOT, ["a"])
        builder.set_output("g1")
        builder.set_output("g2")
        circuit = builder.build()
        assert set(circuit.gate("a").fanout) == {
            circuit.index_of("g1"),
            circuit.index_of("g2"),
        }

    def test_lookup_by_name(self):
        circuit = tiny_builder().build()
        assert circuit.has_gate("g")
        assert not circuit.has_gate("zz")
        with pytest.raises(NetlistError):
            circuit.gate("zz")

    def test_source_indices(self):
        builder = CircuitBuilder("seq")
        builder.add_input("a")
        builder.add_dff("q", "g")
        builder.add_gate("g", GateType.NOT, ["q"])
        builder.set_output("g")
        circuit = builder.build()
        assert set(circuit.source_indices()) == {
            circuit.index_of("a"),
            circuit.index_of("q"),
        }

    def test_dff_fanin_resolves_forward_reference(self):
        builder = CircuitBuilder("seq")
        builder.add_input("a")
        builder.add_dff("q", "g")  # g defined after
        builder.add_gate("g", GateType.AND, ["a", "q"])
        builder.set_output("g")
        circuit = builder.build()
        assert circuit.gate("q").fanin == (circuit.index_of("g"),)

    def test_is_output_flags(self):
        circuit = tiny_builder().build()
        assert circuit.gate("g").is_output
        assert not circuit.gate("a").is_output

    def test_len_and_repr(self):
        circuit = tiny_builder().build()
        assert len(circuit) == 3
        assert "tiny" in repr(circuit)


class TestEvaluateGate:
    def test_plain_gate(self):
        circuit = tiny_builder().build()
        gate = circuit.gate("g")
        assert evaluate_gate(gate, [ONE, ONE]) == ONE
        assert evaluate_gate(gate, [ONE, ZERO]) == ZERO
        assert evaluate_gate(gate, [ONE, X]) == X

    def test_macro_gate_uses_table(self):
        from repro.logic.tables import build_table

        builder = CircuitBuilder("m")
        builder.add_input("a")
        table = build_table(lambda inputs: inputs[0], 1)
        builder.add_macro("g", ["a"], table)
        builder.set_output("g")
        circuit = builder.build()
        assert evaluate_gate(circuit.gate("g"), [ONE]) == ONE

    def test_macro_table_size_validated(self):
        builder = CircuitBuilder("m")
        builder.add_input("a")
        with pytest.raises(NetlistError, match="table has wrong size"):
            builder.add_macro("g", ["a"], (0,) * 3)
