"""Macro extraction: partition invariants, value-exactness, fault tables."""

import itertools
import random

import pytest

from repro.circuit.generate import random_circuit
from repro.circuit.library import load
from repro.circuit.macro import extract_macros
from repro.circuit.netlist import CircuitBuilder
from repro.faults.model import OUTPUT_PIN, StuckAtFault
from repro.faults.universe import all_stuck_at_faults
from repro.logic.tables import GateType
from repro.logic.values import ONE, VALUES, ZERO
from repro.patterns.random_gen import random_sequence
from repro.sim.logicsim import LogicSimulator


class TestPartition:
    @pytest.mark.parametrize("seed", range(6))
    def test_every_combinational_gate_owned_once(self, seed):
        rng = random.Random(seed)
        circuit = random_circuit(rng, num_gates=30, num_dffs=3)
        macro = extract_macros(circuit)
        combinational = {
            gate.index
            for gate in circuit.gates
            if gate.gtype not in (GateType.INPUT, GateType.DFF)
        }
        assert set(macro.owner) == combinational
        covered = [
            index for region in macro.regions.values() for index in region.internal
        ]
        assert sorted(covered) == sorted(combinational)

    def test_input_cap_respected(self):
        circuit = load("s27")
        for cap in (1, 2, 3, 4):
            macro = extract_macros(circuit, max_inputs=cap)
            for root, region in macro.regions.items():
                if root not in macro.plain_roots:
                    assert len(region.pins) <= cap

    def test_macro_circuit_preserves_interface(self):
        circuit = load("s27")
        macro = extract_macros(circuit).circuit
        assert len(macro.inputs) == len(circuit.inputs)
        assert len(macro.outputs) == len(circuit.outputs)
        assert len(macro.dffs) == len(circuit.dffs)
        assert {circuit.gates[i].name for i in circuit.outputs} == {
            macro.gates[i].name for i in macro.outputs
        }

    def test_extraction_reduces_gate_count(self):
        circuit = load("s344")
        macro = extract_macros(circuit).circuit
        assert macro.num_combinational < circuit.num_combinational

    def test_bad_cap_rejected(self):
        with pytest.raises(ValueError):
            extract_macros(load("s27"), max_inputs=0)

    def test_summary_mentions_counts(self):
        text = extract_macros(load("s27")).summary()
        assert "regions" in text


class TestValueExactness:
    @pytest.mark.parametrize("seed", range(6))
    def test_macro_circuit_simulates_identically(self, seed):
        rng = random.Random(seed + 40)
        circuit = random_circuit(rng, num_gates=25, num_dffs=3)
        macro = extract_macros(circuit).circuit
        flat_sim = LogicSimulator(circuit)
        macro_sim = LogicSimulator(macro)
        for vector in random_sequence(circuit, 15, seed=seed, x_probability=0.1):
            assert flat_sim.step(vector) == macro_sim.step(vector)

    def test_exactness_includes_x_semantics(self):
        # The macro table must reproduce gate-wise X pessimism, not the
        # (more accurate) function over completions: g = OR(a, NOT(a)) is
        # X for a=X gate-wise even though every completion yields 1.
        builder = CircuitBuilder("pess")
        builder.add_input("a")
        builder.add_gate("n", GateType.NOT, ["a"])
        builder.add_gate("g", GateType.OR, ["a", "n"])
        builder.set_output("g")
        circuit = builder.build()
        macro = extract_macros(circuit).circuit
        sim = LogicSimulator(macro)
        sim.settle((VALUES[2],))  # X
        assert sim.values[macro.index_of("g")] == VALUES[2]


class TestFaultTranslation:
    def test_internal_fault_becomes_table(self):
        builder = CircuitBuilder("tree")
        for name in "abcd":
            builder.add_input(name)
        builder.add_gate("l", GateType.AND, ["a", "b"])
        builder.add_gate("r", GateType.OR, ["c", "d"])
        builder.add_gate("g", GateType.NAND, ["l", "r"])
        builder.set_output("g")
        circuit = builder.build()
        macro = extract_macros(circuit, max_inputs=4)
        fault = StuckAtFault.make(circuit.index_of("l"), OUTPUT_PIN, 0)
        site, behavior, pin, value, table = macro.translate_stuck_at(fault)
        assert behavior == "table"
        assert macro.circuit.gates[site].name == "g"
        # With l stuck 0, g = NAND(0, r) = 1 for every input combination.
        good_table = macro.circuit.gates[site].table
        assert table != good_table
        for inputs in itertools.product((ZERO, ONE), repeat=4):
            from repro.logic.tables import pack_inputs

            assert table[pack_inputs(inputs)] == ONE

    def test_pi_fault_stays_structural(self):
        circuit = load("s27")
        macro = extract_macros(circuit)
        pi = circuit.inputs[0]
        site, behavior, pin, value, table = macro.translate_stuck_at(
            StuckAtFault.make(pi, OUTPUT_PIN, 1)
        )
        assert behavior == "force_output"
        assert table is None
        assert macro.circuit.gates[site].gtype is GateType.INPUT

    def test_dff_faults_stay_structural(self):
        circuit = load("s27")
        macro = extract_macros(circuit)
        ff = circuit.dffs[0]
        site, behavior, pin, value, table = macro.translate_stuck_at(
            StuckAtFault.make(ff, 0, 0)
        )
        assert behavior == "force_input"
        assert macro.circuit.gates[site].gtype is GateType.DFF

    @pytest.mark.parametrize("seed", range(3))
    def test_every_fault_translates(self, seed):
        rng = random.Random(seed + 77)
        circuit = random_circuit(rng, num_gates=20, num_dffs=2)
        macro = extract_macros(circuit)
        for fault in all_stuck_at_faults(circuit):
            site, behavior, pin, value, table = macro.translate_stuck_at(fault)
            assert 0 <= site < len(macro.circuit.gates)
            assert behavior in ("force_output", "force_input", "table")
            if behavior == "table":
                assert table is not None
