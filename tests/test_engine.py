"""Unit-level behaviour of the concurrent fault simulator."""

import pytest

from repro.circuit.library import load
from repro.circuit.netlist import CircuitBuilder
from repro.concurrent.engine import ConcurrentFaultSimulator
from repro.concurrent.options import CSIM, CSIM_MV, CSIM_V, SimOptions
from repro.faults.model import OUTPUT_PIN, StuckAtFault
from repro.faults.universe import stuck_at_universe
from repro.logic.tables import GateType
from repro.logic.values import ONE, X, ZERO
from repro.patterns.random_gen import random_sequence


def and_circuit():
    builder = CircuitBuilder("and2")
    builder.add_input("a")
    builder.add_input("b")
    builder.add_gate("g", GateType.AND, ["a", "b"])
    builder.set_output("g")
    return builder.build()


def shift_register():
    builder = CircuitBuilder("shift")
    builder.add_input("a")
    builder.add_gate("buf", GateType.BUF, ["a"])
    builder.add_dff("q1", "buf")
    builder.add_gate("mid", GateType.BUF, ["q1"])
    builder.add_dff("q2", "mid")
    builder.set_output("q2")
    return builder.build()


class TestSingleGateDetection:
    def test_and_input_sa0_detected_by_11(self):
        circuit = and_circuit()
        g = circuit.index_of("g")
        fault = StuckAtFault.make(g, 0, 0)
        sim = ConcurrentFaultSimulator(circuit, [fault])
        assert sim.step((ONE, ONE)) == [fault]
        assert sim.detected[fault] == 1

    def test_and_input_sa0_not_detected_by_masked_vector(self):
        circuit = and_circuit()
        g = circuit.index_of("g")
        fault = StuckAtFault.make(g, 0, 0)
        sim = ConcurrentFaultSimulator(circuit, [fault])
        assert sim.step((ONE, ZERO)) == []  # other input masks
        assert sim.step((ZERO, ONE)) == []  # fault not excited
        assert sim.step((ONE, ONE)) == [fault]
        assert sim.detected[fault] == 3

    def test_x_blocks_detection(self):
        circuit = and_circuit()
        g = circuit.index_of("g")
        fault = StuckAtFault.make(g, OUTPUT_PIN, 0)
        sim = ConcurrentFaultSimulator(circuit, [fault])
        assert sim.step((ONE, X)) == []  # good output is X: no detection
        assert sim.step((ONE, ONE)) == [fault]


class TestSequentialBehaviour:
    def test_latency_through_flip_flops(self):
        circuit = shift_register()
        pi = circuit.index_of("a")
        fault = StuckAtFault.make(pi, OUTPUT_PIN, 0)
        sim = ConcurrentFaultSimulator(circuit, [fault])
        detections = [sim.step((ONE,)) for _ in range(4)]
        # Effect needs two clock edges to reach q2, and the good value must
        # be binary: detection lands exactly at cycle 3.
        assert detections[0] == [] and detections[1] == []
        assert detections[2] == [fault]

    def test_ff_output_stuck_detected_in_first_cycles(self):
        circuit = shift_register()
        q2 = circuit.index_of("q2")
        fault = StuckAtFault.make(q2, OUTPUT_PIN, 1)
        sim = ConcurrentFaultSimulator(circuit, [fault])
        # q2 is observed directly; good is X in cycle 1/2 (no detection),
        # binary 0 at cycle 3.
        results = [sim.step((ZERO,)) for _ in range(3)]
        assert results[2] == [fault]

    def test_fault_effects_persist_in_state(self):
        circuit = shift_register()
        buf = circuit.index_of("buf")
        fault = StuckAtFault.make(buf, OUTPUT_PIN, 1)
        sim = ConcurrentFaultSimulator(circuit, [fault])
        sim.step((ZERO,))
        q1 = circuit.index_of("q1")
        assert sim.vis[q1].get(0) == ONE  # latched fault effect


class TestDropping:
    def test_dropped_fault_elements_removed(self):
        circuit = load("s27")
        faults = stuck_at_universe(circuit)
        sim = ConcurrentFaultSimulator(circuit, faults, CSIM_V)
        for vector in random_sequence(circuit, 60, seed=3):
            sim.step(vector)
        live_fids = set()
        for bucket in sim.vis + sim.invis:
            live_fids.update(bucket.keys())
        detected_fids = {
            d.fid for d in sim.descriptors if d.detected
        }
        assert not (live_fids & detected_fids)

    def test_detection_cycles_equal_with_and_without_dropping(self):
        circuit = load("s27")
        faults = stuck_at_universe(circuit)
        tests = random_sequence(circuit, 40, seed=9)
        with_drop = ConcurrentFaultSimulator(circuit, faults, CSIM).run(tests)
        without = ConcurrentFaultSimulator(
            circuit, faults, CSIM.with_(drop_detected=False)
        ).run(tests)
        assert with_drop.detected == without.detected

    def test_dropping_reduces_work(self):
        circuit = load("s27")
        faults = stuck_at_universe(circuit)
        tests = random_sequence(circuit, 60, seed=9)
        with_drop = ConcurrentFaultSimulator(circuit, faults, CSIM).run(tests)
        without = ConcurrentFaultSimulator(
            circuit, faults, CSIM.with_(drop_detected=False)
        ).run(tests)
        assert (
            with_drop.counters.fault_evaluations
            < without.counters.fault_evaluations
        )


class TestSplitLists:
    def test_split_gives_identical_results(self, s27, s27_tests):
        faults = stuck_at_universe(s27)
        split = ConcurrentFaultSimulator(s27, faults, CSIM_V).run(s27_tests)
        merged = ConcurrentFaultSimulator(s27, faults, CSIM).run(s27_tests)
        assert split.detected == merged.detected

    def test_split_reduces_element_visits(self, s27, s27_tests):
        faults = stuck_at_universe(s27)
        split = ConcurrentFaultSimulator(s27, faults, CSIM_V).run(s27_tests)
        merged = ConcurrentFaultSimulator(s27, faults, CSIM).run(s27_tests)
        assert split.counters.element_visits <= merged.counters.element_visits


class TestMemoryAccounting:
    def test_live_count_matches_lists(self, s27, s27_tests):
        faults = stuck_at_universe(s27)
        sim = ConcurrentFaultSimulator(s27, faults, CSIM_V)
        for vector in s27_tests:
            sim.step(vector)
        actual = sum(len(bucket) for bucket in sim.vis) + sum(
            len(bucket) for bucket in sim.invis
        )
        assert sim._live_elements == actual

    def test_peak_at_least_final(self, s27, s27_tests):
        result = ConcurrentFaultSimulator(
            s27, stuck_at_universe(s27), CSIM_V
        ).run(s27_tests)
        assert result.memory.peak_elements >= result.memory.live_elements
        assert result.memory.peak_megabytes > 0


class TestSnapshotRestore:
    def test_roundtrip_is_exact(self, s27):
        faults = stuck_at_universe(s27)
        sim = ConcurrentFaultSimulator(s27, faults, CSIM_V)
        prefix = random_sequence(s27, 10, seed=1)
        suffix = random_sequence(s27, 10, seed=2)
        for vector in prefix:
            sim.step(vector)
        snap = sim.snapshot()
        for vector in suffix:
            sim.step(vector)
        after_suffix = dict(sim.detected)
        sim.restore(snap)
        for vector in suffix:
            sim.step(vector)
        assert sim.detected == after_suffix

    def test_restore_rolls_back_detections(self, s27):
        sim = ConcurrentFaultSimulator(s27, stuck_at_universe(s27))
        snap = sim.snapshot()
        for vector in random_sequence(s27, 30, seed=4):
            sim.step(vector)
        assert sim.detected
        sim.restore(snap)
        assert not sim.detected
        assert sim.cycle == 0


class TestApiValidation:
    def test_vector_width_checked(self, s27):
        sim = ConcurrentFaultSimulator(s27)
        with pytest.raises(ValueError):
            sim.step((ONE,))

    def test_default_universe_is_collapsed(self, s27):
        sim = ConcurrentFaultSimulator(s27)
        assert sim.faults == stuck_at_universe(s27)

    def test_stop_at_coverage(self, s27):
        sim = ConcurrentFaultSimulator(s27, options=CSIM_V)
        result = sim.run(random_sequence(s27, 200, seed=3), stop_at_coverage=0.5)
        assert result.coverage >= 0.5
        assert result.num_vectors < 200

    def test_variant_names(self):
        assert CSIM.variant_name == "csim"
        assert CSIM_V.variant_name == "csim-V"
        assert CSIM_MV.variant_name == "csim-MV"
        assert SimOptions(use_macros=True).variant_name == "csim-M"
        assert "no drop" in CSIM.with_(drop_detected=False).variant_name


class TestSharedCaches:
    """The hot-path caches: per-circuit eval tables and macro transforms
    are built once and shared by every engine instance on that circuit."""

    def test_eval_tables_shared_across_instances(self, s27):
        from repro.concurrent.engine import shared_eval_tables

        first = ConcurrentFaultSimulator(s27, options=CSIM_V)
        second = ConcurrentFaultSimulator(s27, options=CSIM)
        assert first._eval_tables is second._eval_tables
        assert first._eval_tables is shared_eval_tables(s27)

    def test_macro_transform_shared_across_instances(self, s27):
        first = ConcurrentFaultSimulator(s27, options=CSIM_MV)
        second = ConcurrentFaultSimulator(s27, options=CSIM_MV)
        assert first.macro is second.macro
        assert first._eval_tables is second._eval_tables

    def test_distinct_circuits_get_distinct_tables(self, s27):
        from repro.concurrent.engine import shared_eval_tables

        other = load("s298")
        assert shared_eval_tables(s27) is not shared_eval_tables(other)

    def test_descriptors_have_no_dict(self, s27):
        sim = ConcurrentFaultSimulator(s27)
        descriptor = next(d for d in sim.descriptors if d is not None)
        assert not hasattr(descriptor, "__dict__")

    def test_scratch_dict_reused_across_cycles(self, s27):
        sim = ConcurrentFaultSimulator(s27, options=CSIM_MV)
        vectors = random_sequence(s27, 4, seed=2).vectors
        sim.step(vectors[0])
        scratch = sim._scratch_candidates
        for vector in vectors[1:]:
            sim.step(vector)
        assert sim._scratch_candidates is scratch
