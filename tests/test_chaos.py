"""Chaos harness tests: every injected failure is detected or recovered.

The four injection classes of :mod:`repro.robust.chaos`, each asserted
against the guard that must catch it:

* tracer hook exceptions   -> GuardedTracer disarms, run completes
* dropped events           -> ladder's serial spot-check catches, degrades
* corrupted list elements  -> invariant check or crash, ladder degrades
* truncated checkpoints    -> read_checkpoint refuses with a clean error
"""

import pytest

from repro.circuit.library import load
from repro.harness.runner import run_stuck_at, workload_tests
from repro.obs import RecordingTracer
from repro.patterns.vectors import TestSequence
from repro.robust import (
    Checkpoint,
    CheckpointError,
    GuardedTracer,
    read_checkpoint,
    run_checkpointed,
    run_with_ladder,
    verify_invariants,
    write_checkpoint,
)
from repro.robust.chaos import (
    ChaosError,
    ElementCorruptionChaos,
    EventDropChaos,
    HookBombTracer,
    chaos_simulator_factory,
    truncate_file,
)


@pytest.fixture(scope="module")
def s27():
    return load("s27")


@pytest.fixture(scope="module")
def s27_tests(s27):
    return workload_tests("s27")


@pytest.fixture(scope="module")
def short_tests(s27_tests):
    """Few enough vectors that coverage stays below 100% and fault
    elements are still live at the end of the run — so a corrupted
    element cannot be masked by fault dropping."""
    return TestSequence(s27_tests.num_inputs, s27_tests.vectors[:4])


class TestHookBomb:
    def test_bomb_detonates_unguarded(self, s27, s27_tests):
        with pytest.raises(ChaosError, match="hook bomb"):
            run_stuck_at(
                s27, s27_tests, "csim-MV", tracer=HookBombTracer(detonate_after=25)
            )

    def test_guarded_tracer_contains_the_blast(self, s27, s27_tests):
        reference = run_stuck_at(s27, s27_tests, "csim-MV")
        guard = GuardedTracer(HookBombTracer(detonate_after=25))
        result = run_stuck_at(s27, s27_tests, "csim-MV", tracer=guard)
        assert result.detected == reference.detected
        assert result.counters == reference.counters
        assert isinstance(guard.failure, ChaosError)
        assert guard.failed_hook is not None
        assert guard.inner is None  # disarmed after first failure

    def test_guarded_recording_tracer_keeps_prefix(self, s27, s27_tests):
        """A guarded tracer that fails mid-run still serves what it
        recorded before the failure... unless disarmed; telemetry is then
        None rather than half-consistent."""

        class FlakyRecording(RecordingTracer):
            def cycle_start(self, cycle):
                if cycle == 5:
                    raise ChaosError("flaky observer")
                super().cycle_start(cycle)

        guard = GuardedTracer(FlakyRecording())
        result = run_stuck_at(s27, s27_tests, "csim-MV", tracer=guard)
        assert guard.failed_hook == "cycle_start"
        assert result.telemetry is None

    def test_interrupt_is_never_eaten(self, s27, s27_tests):
        class InterruptingTracer(RecordingTracer):
            def cycle_start(self, cycle):
                if cycle == 3:
                    raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_stuck_at(
                s27, s27_tests, "csim-MV", tracer=GuardedTracer(InterruptingTracer())
            )


class TestEventDropping:
    def test_dropped_events_corrupt_the_result(self, s27, s27_tests):
        """Premise check: the chaotic engine really is wrong on its own."""
        honest = run_stuck_at(s27, s27_tests, "csim-MV")
        chaotic = EventDropChaos(s27, drop_every=2).run(s27_tests)
        assert chaotic.detected != honest.detected

    def test_ladder_recovers(self, s27, s27_tests):
        reference = run_stuck_at(s27, s27_tests, "csim-MV")
        tracer = RecordingTracer()
        result = run_with_ladder(
            s27,
            s27_tests,
            tracer=tracer,
            simulator_factory=chaos_simulator_factory("drop-events", drop_every=2),
        )
        assert result.detected == reference.detected
        assert result.engine == "csim"
        assert len(result.fallbacks) == 1
        assert "oracle disagreement" in result.fallbacks[0]["reason"]
        assert tracer.fallbacks == result.fallbacks


class TestElementCorruption:
    def test_corruption_is_caught_by_a_guard(self, s27, short_tests):
        simulator = ElementCorruptionChaos(s27, corrupt_at_cycle=2)
        crashed = False
        try:
            for vector in short_tests.vectors:
                simulator.step(vector)
        except Exception:
            # The poisoned value was used as a packed table index.
            crashed = True
        assert simulator.corrupted is not None
        if not crashed:
            violations = verify_invariants(simulator)
            assert any("illegal logic value" in v for v in violations)

    def test_ladder_recovers(self, s27, short_tests):
        reference = run_stuck_at(s27, short_tests, "csim-MV")
        result = run_with_ladder(
            s27,
            short_tests,
            simulator_factory=chaos_simulator_factory(
                "corrupt-element", corrupt_at_cycle=2
            ),
        )
        assert result.detected == reference.detected
        assert len(result.fallbacks) == 1
        reason = result.fallbacks[0]["reason"]
        # Either guard may fire first depending on circuit activity; both
        # are detections of the same injected corruption.
        assert "invariant violated" in reason or "engine raised" in reason

    def test_unknown_chaos_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos kind"):
            chaos_simulator_factory("set-fire-to-the-building")


class TestTruncatedCheckpoint:
    def test_every_truncation_length_is_detected(self, tmp_path):
        path = str(tmp_path / "ck.pkl")
        write_checkpoint(path, Checkpoint("run", "fp", {"state": list(range(50))}))
        import os

        full = os.path.getsize(path)
        for keep in (0, 1, 5, 9, 10, 20, 41, full - 1):
            write_checkpoint(path, Checkpoint("run", "fp", {"state": list(range(50))}))
            truncate_file(path, keep)
            with pytest.raises(CheckpointError):
                read_checkpoint(path)

    def test_resume_from_truncated_checkpoint_refused(
        self, tmp_path, s27, s27_tests
    ):
        path = str(tmp_path / "ck.pkl")
        run_checkpointed(s27, s27_tests, "csim-MV", checkpoint_path=path)
        truncate_file(path, 64)
        with pytest.raises(CheckpointError, match="truncated or corrupt"):
            run_checkpointed(
                s27, s27_tests, "csim-MV", checkpoint_path=path, resume=True
            )
