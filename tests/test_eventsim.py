"""The arbitrary-delay event-driven simulator (Section 2's generality)."""

import random

import pytest

from repro.circuit.generate import random_circuit
from repro.circuit.library import load
from repro.circuit.netlist import CircuitBuilder
from repro.logic.tables import GateType
from repro.logic.values import ONE, X, ZERO
from repro.patterns.random_gen import random_sequence
from repro.sim.delays import DelayModel, random_delays, typed_delays, unit_delays
from repro.sim.eventsim import EventSimulator
from repro.sim.logicsim import LogicSimulator


def glitch_circuit():
    """Classic static-hazard circuit: g = AND(a, NOT(a)) glitches on a's
    rise under unequal path delays, and is constant under zero delay."""
    builder = CircuitBuilder("hazard")
    builder.add_input("a")
    builder.add_gate("n", GateType.NOT, ["a"])
    builder.add_gate("g", GateType.AND, ["a", "n"])
    builder.set_output("g")
    return builder.build()


class TestDelayModels:
    def test_unit(self):
        circuit = load("s27")
        model = unit_delays(circuit)
        assert all(
            model.delay(index) == 1 for index in circuit.order
        )
        assert model.max_delay == 1

    def test_sources_are_zero_delay(self):
        circuit = load("s27")
        model = typed_delays(circuit)
        for index in circuit.inputs + circuit.dffs:
            assert model.delay(index) == 0

    def test_typed_inverter_faster_than_xor(self):
        circuit = glitch_circuit()
        model = typed_delays(circuit)
        assert model.delay(circuit.index_of("n")) < 4

    def test_random_deterministic(self):
        circuit = load("s27")
        first = random_delays(circuit, seed=3)
        second = random_delays(circuit, seed=3)
        assert all(
            first.delay(index) == second.delay(index) for index in circuit.order
        )

    def test_zero_combinational_delay_rejected(self):
        circuit = glitch_circuit()
        with pytest.raises(ValueError):
            DelayModel(circuit, {circuit.index_of("g"): 0})


class TestEventPropagation:
    def test_glitch_visible_with_slow_inverter(self):
        circuit = glitch_circuit()
        delays = DelayModel(
            circuit, {circuit.index_of("n"): 5, circuit.index_of("g"): 1}
        )
        sim = EventSimulator(circuit, delays, record=True)
        g = circuit.index_of("g")
        sim.set_input(0, ZERO, at_time=0)
        sim.run()
        sim.set_input(0, ONE, at_time=sim.time + 1)
        sim.run()
        values_of_g = [value for _, gate, value in sim.trace if gate == g]
        assert ONE in values_of_g  # the hazard pulse
        assert sim.values[g] == ZERO  # settles back

    def test_quiescence(self):
        circuit = glitch_circuit()
        sim = EventSimulator(circuit)
        sim.set_input(0, ONE)
        sim.run()
        assert sim.quiescent()

    def test_counters_advance(self):
        circuit = load("s27")
        sim = EventSimulator(circuit)
        for position in range(4):
            sim.set_input(position, ZERO)
        sim.run()
        assert sim.events_processed > 0
        assert sim.evaluations > 0

    def test_cannot_schedule_in_past(self):
        sim = EventSimulator(glitch_circuit())
        sim.set_input(0, ONE, at_time=5)
        sim.run()
        with pytest.raises(ValueError):
            sim.set_input(0, ZERO, at_time=1)


class TestSynchronousWrapper:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_zero_delay_with_ample_period(self, seed):
        """With a clock period beyond the critical path, arbitrary-delay
        simulation samples exactly what the zero-delay simulator computes."""
        rng = random.Random(seed)
        circuit = random_circuit(rng, num_gates=20, num_dffs=3)
        delays = random_delays(circuit, seed=seed, lo=1, hi=4)
        period = 4 * circuit.num_levels + 10
        event_sim = EventSimulator(circuit, delays)
        cycle_sim = LogicSimulator(circuit)
        for vector in random_sequence(circuit, 10, seed=seed + 50):
            assert event_sim.run_cycle(vector, period) == cycle_sim.step(vector)

    def test_short_period_can_missample(self):
        # A period shorter than the path delay latches stale values; the
        # simulator must model that honestly rather than idealize it.
        builder = CircuitBuilder("slowpath")
        builder.add_input("a")
        builder.add_gate("n1", GateType.BUF, ["a"])
        builder.add_gate("n2", GateType.BUF, ["n1"])
        builder.add_dff("q", "n2")
        builder.set_output("q")
        circuit = builder.build()
        delays = DelayModel(
            circuit,
            {circuit.index_of("n1"): 4, circuit.index_of("n2"): 4},
        )
        sim = EventSimulator(circuit, delays)
        sim.run_cycle((ONE,), period=3)  # too short for the 8-unit path
        outputs = sim.run_cycle((ONE,), period=3)
        assert outputs[0] == X  # q latched the not-yet-arrived (X) value

    def test_vector_width_checked(self):
        sim = EventSimulator(glitch_circuit())
        with pytest.raises(ValueError):
            sim.run_cycle((ONE, ZERO), period=10)
