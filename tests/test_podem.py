"""PODEM test generation and redundancy identification."""

import itertools
import random

import pytest

from repro.baselines.deductive import deductive_detects, simulate_deductive
from repro.circuit.generate import random_circuit
from repro.circuit.library import load
from repro.circuit.netlist import CircuitBuilder
from repro.faults.model import OUTPUT_PIN, StuckAtFault
from repro.faults.universe import all_stuck_at_faults, stuck_at_universe
from repro.logic.tables import GateType
from repro.logic.values import ONE, X, ZERO
from repro.patterns.podem import generate_deterministic_tests, podem


def _comb(seed, gates=14):
    rng = random.Random(seed)
    return random_circuit(rng, num_gates=gates, num_dffs=0, name=f"pod{seed}")


def redundant_circuit():
    """g = OR(a, NOT(a)) is constant 1: its s-a-1 faults are untestable."""
    builder = CircuitBuilder("red")
    builder.add_input("a")
    builder.add_input("b")
    builder.add_gate("n", GateType.NOT, ["a"])
    builder.add_gate("k", GateType.OR, ["a", "n"])
    builder.add_gate("g", GateType.AND, ["k", "b"])
    builder.set_output("g")
    return builder.build()


class TestPodemSingleFault:
    def test_sequential_rejected(self):
        with pytest.raises(ValueError, match="combinational"):
            podem(load("s27"), StuckAtFault.make(0, OUTPUT_PIN, 0))

    def test_and_gate_fault(self):
        builder = CircuitBuilder("and2")
        builder.add_input("a")
        builder.add_input("b")
        builder.add_gate("g", GateType.AND, ["a", "b"])
        builder.set_output("g")
        circuit = builder.build()
        g = circuit.index_of("g")
        result = podem(circuit, StuckAtFault.make(g, 0, 0))
        assert result.detected
        # The only test for input-0 s-a-0 of AND is (1, 1).
        grounded = tuple(ZERO if v == X else v for v in result.vector)
        assert grounded == (ONE, ONE)

    def test_generated_vector_really_detects(self):
        """Every PODEM vector must detect its target per the deductive
        oracle — on many random circuits and faults."""
        rng = random.Random(5)
        for seed in range(6):
            circuit = _comb(seed + 20)
            faults = all_stuck_at_faults(circuit)
            for fault in rng.sample(faults, min(12, len(faults))):
                result = podem(circuit, fault)
                if result.detected:
                    vector = tuple(ZERO if v == X else v for v in result.vector)
                    assert fault in deductive_detects(circuit, vector, [fault])

    def test_redundant_fault_proven(self):
        circuit = redundant_circuit()
        k = circuit.index_of("k")
        result = podem(circuit, StuckAtFault.make(k, OUTPUT_PIN, 1))
        assert result.redundant
        assert not result.detected

    def test_redundancy_verdicts_match_exhaustive(self):
        """On small circuits, PODEM's testable/redundant split must equal
        exhaustive enumeration of all input vectors."""
        for seed in range(4):
            circuit = _comb(seed + 70, gates=10)
            if len(circuit.inputs) > 5:
                continue
            faults = all_stuck_at_faults(circuit)
            testable = set()
            for values in itertools.product((ZERO, ONE), repeat=len(circuit.inputs)):
                testable |= deductive_detects(circuit, values, faults)
            for fault in faults:
                result = podem(circuit, fault)
                assert not result.aborted
                assert result.detected == (fault in testable), fault
                assert result.redundant == (fault not in testable), fault

    def test_backtrack_budget_aborts(self):
        circuit = _comb(3, gates=20)
        fault = all_stuck_at_faults(circuit)[0]
        result = podem(circuit, fault, max_backtracks=0)
        assert result.aborted or result.detected or result.redundant


class TestAtpgFlow:
    @pytest.mark.parametrize("seed", range(4))
    def test_complete_classification(self, seed):
        circuit = _comb(seed + 40)
        faults = stuck_at_universe(circuit)
        tests, redundant, aborted = generate_deterministic_tests(circuit, faults)
        assert not aborted
        result = simulate_deductive(circuit, tests.vectors, faults)
        detected = set(result.detected)
        # detected + redundant partition the universe.
        assert detected | set(redundant) == set(faults)
        assert not (detected & set(redundant))

    def test_beats_random_coverage(self):
        circuit = _comb(99, gates=20)
        faults = stuck_at_universe(circuit)
        tests, redundant, _ = generate_deterministic_tests(circuit, faults)
        atpg_result = simulate_deductive(circuit, tests.vectors, faults)
        from repro.patterns.random_gen import random_sequence

        random_result = simulate_deductive(
            circuit, random_sequence(circuit, len(tests), seed=4).vectors, faults
        )
        assert atpg_result.num_detected >= random_result.num_detected

    def test_redundant_faults_excluded_from_tests(self):
        circuit = redundant_circuit()
        faults = all_stuck_at_faults(circuit)
        tests, redundant, aborted = generate_deterministic_tests(circuit, faults)
        assert redundant  # the constant-1 cone has untestable faults
        assert not aborted
        result = simulate_deductive(circuit, tests.vectors, faults)
        assert set(result.detected) | set(redundant) == set(faults)
