"""Kill-and-resume chaos for the serving layer.

A worker dying mid-job (modelled by :func:`repro.robust.chaos.step_bomb`,
which makes the engine's ``step`` raise ``KeyboardInterrupt`` after N
cycles) must leave the job ``running`` with its periodic checkpoint on
disk.  After :meth:`FaultSimService.recover` the retry resumes from that
checkpoint — not from cycle zero — and the final result is bit-identical
to a run that was never interrupted.
"""

import pytest

from repro.circuit.library import load
from repro.concurrent.engine import ConcurrentFaultSimulator
from repro.harness.runner import run_stuck_at
from repro.patterns.random_gen import random_sequence
from repro.robust.chaos import step_bomb
from repro.serve import FaultSimService, ServeConfig, serialize_result

JOB = {"circuit": "s27", "random_patterns": 40, "seed": 5}


def make_service(tmp_path, name="state", **overrides):
    overrides.setdefault("workers", 0)
    overrides.setdefault("checkpoint_every", 4)
    return FaultSimService(ServeConfig(state_dir=str(tmp_path / name), **overrides))


def test_killed_worker_leaves_job_running_with_checkpoint(tmp_path):
    service = make_service(tmp_path)
    record, _ = service.submit(dict(JOB))
    with step_bomb(ConcurrentFaultSimulator, after_steps=10) as counter:
        with pytest.raises(KeyboardInterrupt):
            service.process_once()
    assert counter["calls"] == 11
    victim = service.status(record.job_id)
    assert victim.state == "running"  # recover() turns this into a retry
    assert service.store.read_result(record.job_id) is None
    import os

    assert os.path.exists(service._checkpoint_path(record.job_id))


def test_recovered_job_resumes_and_matches_uninterrupted_run(tmp_path):
    service = make_service(tmp_path)
    record, _ = service.submit(dict(JOB))
    with step_bomb(ConcurrentFaultSimulator, after_steps=10):
        with pytest.raises(KeyboardInterrupt):
            service.process_once()

    # The service restarts (same state dir), finds the orphan, re-queues it.
    reborn = make_service(tmp_path)
    assert reborn.recover() == 1
    with step_bomb(ConcurrentFaultSimulator, after_steps=10_000) as counter:
        assert reborn.drain() == 1
    finished = reborn.status(record.job_id)
    assert finished.state == "done", finished.error
    assert finished.attempts == 2
    # checkpoint_every=4 and death after 10 cycles → resume from cycle 8.
    assert finished.resumed_from_cycle == 8
    # The retry simulated only the remaining cycles, not all 40.
    assert counter["calls"] == 40 - 8

    circuit = load("s27")
    direct = run_stuck_at(circuit, random_sequence(circuit, 40, seed=5), "csim-MV")
    assert reborn.result_bytes(record.job_id) == serialize_result(direct, circuit)


def test_resumed_result_is_cached_and_serves_duplicates(tmp_path):
    service = make_service(tmp_path)
    record, _ = service.submit(dict(JOB))
    with step_bomb(ConcurrentFaultSimulator, after_steps=10):
        with pytest.raises(KeyboardInterrupt):
            service.process_once()
    reborn = make_service(tmp_path)
    reborn.recover()
    reborn.drain()
    duplicate, _ = reborn.submit(dict(JOB))
    assert duplicate.cache_hit
    assert reborn.result_bytes(duplicate.job_id) == reborn.result_bytes(record.job_id)


def test_same_process_recover_after_kill(tmp_path):
    """recover() works without a restart: the same instance re-queues."""
    service = make_service(tmp_path)
    record, _ = service.submit(dict(JOB))
    with step_bomb(ConcurrentFaultSimulator, after_steps=10):
        with pytest.raises(KeyboardInterrupt):
            service.process_once()
    assert service.recover() == 1
    assert service.drain() == 1
    finished = service.status(record.job_id)
    assert finished.state == "done"
    assert finished.resumed_from_cycle == 8


def test_torn_checkpoint_restarts_from_scratch(tmp_path):
    """A checkpoint corrupted by the crash is discarded, not trusted."""
    from repro.robust.chaos import truncate_file

    service = make_service(tmp_path)
    record, _ = service.submit(dict(JOB))
    with step_bomb(ConcurrentFaultSimulator, after_steps=10):
        with pytest.raises(KeyboardInterrupt):
            service.process_once()
    truncate_file(service._checkpoint_path(record.job_id), 20)
    reborn = make_service(tmp_path)
    reborn.recover()
    with step_bomb(ConcurrentFaultSimulator, after_steps=10_000) as counter:
        assert reborn.drain() == 1
    finished = reborn.status(record.job_id)
    assert finished.state == "done"
    assert finished.resumed_from_cycle == 0  # nothing to resume from
    assert counter["calls"] == 40  # full recompute

    circuit = load("s27")
    direct = run_stuck_at(circuit, random_sequence(circuit, 40, seed=5), "csim-MV")
    assert reborn.result_bytes(record.job_id) == serialize_result(direct, circuit)


def test_plain_exception_marks_job_failed_not_running(tmp_path):
    """Ordinary failures are terminal; only worker death leaves 'running'."""
    service = make_service(tmp_path)
    record, _ = service.submit(dict(JOB))
    with step_bomb(ConcurrentFaultSimulator, after_steps=10, exception=ValueError):
        assert service.process_once() == 1  # handled, not propagated
    failed = service.status(record.job_id)
    assert failed.state == "failed"
    assert "ValueError" in failed.error
    assert service.metrics_snapshot()["jobs"]["failed"] == 1
    # A failed job is terminal: recover() does not retry it.
    assert service.recover() == 0
