"""Acceptance: one HTTP-submitted sharded job renders as one span tree.

The observability plane's end-to-end contract: a job submitted over the
REST API with ``jobs: 4`` leaves exactly one trace whose stitched tree
covers the API handling, the queue wait, the worker's setup/simulate/
serialize phases, every shard process and the merge — and the merged
telemetry sidecar reconciles exactly with the work counters the service
aggregated for the job.
"""

import json
import threading
import time
import urllib.request

import pytest

from repro.obs.span import read_spans, stitch_trace, trace_ids
from repro.serve import FaultSimService, ServeConfig, make_server

JOB = {"circuit": "s27", "random_patterns": 24, "seed": 13, "jobs": 4}


@pytest.fixture
def traced_service(tmp_path):
    trace_dir = str(tmp_path / "trace")
    service = FaultSimService(
        ServeConfig(
            state_dir=str(tmp_path / "state"), workers=1, trace_dir=trace_dir
        )
    )
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    service.start()
    yield service, server.server_address[1], trace_dir
    service.stop()
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


def _post(port, payload):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/jobs",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def _wait_done(port, job_id, timeout=120.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/jobs/{job_id}", timeout=30
        ) as response:
            record = json.loads(response.read())
        if record["state"] in ("done", "failed", "cancelled"):
            return record
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish in {timeout}s")


class TestShardedJobTrace:
    def test_single_trace_covers_api_to_merge(self, traced_service):
        service, port, trace_dir = traced_service
        status, submitted = _post(port, dict(JOB))
        assert status == 201
        record = _wait_done(port, submitted["job_id"])
        assert record["state"] == "done", record
        service.stop()  # flush the serve-side span writer

        spans = read_spans(trace_dir)
        ids = trace_ids(spans)
        assert len(ids) == 1, f"expected one trace, got {ids}"
        (root,) = stitch_trace(spans, ids[0])

        assert root.name == "job"
        assert root.span_id == ids[0]  # root span id == trace id
        assert root.attrs["state"] == "done"
        names = {node.name for node, _ in root.walk()}
        for phase in (
            "api POST /jobs",
            "queue_wait",
            "setup",
            "simulate",
            "serialize",
            "cache_store",
        ):
            assert phase in names, f"missing {phase!r} in {sorted(names)}"

        # The simulate span owns the parallel campaign: plan, every
        # shard, merge — nested, not dangling off the root.
        (simulate,) = [
            node for node, _ in root.walk() if node.name == "simulate"
        ]
        sim_names = {node.name for node, _ in simulate.walk()}
        assert "plan" in sim_names
        assert "merge" in sim_names
        shard_spans = [
            node for node, _ in simulate.walk() if "shard" in node.attrs
        ]
        total = int(shard_spans[0].attrs["total"])
        assert {int(node.attrs["shard"]) for node in shard_spans} == set(
            range(total)
        )
        # Shards ran in worker processes, not the serve thread.
        serve_pid = root.pid
        assert all(node.pid != serve_pid for node in shard_spans)
        assert len({node.pid for node in shard_spans}) >= 2

    def test_telemetry_sidecar_reconciles_with_service_counters(
        self, traced_service
    ):
        service, port, trace_dir = traced_service
        _, submitted = _post(port, dict(JOB))
        record = _wait_done(port, submitted["job_id"])
        assert record["state"] == "done"

        spans = read_spans(trace_dir)
        (trace_id,) = trace_ids(spans)
        with open(f"{trace_dir}/telemetry-{trace_id}.json") as handle:
            telemetry = json.load(handle)
        counters = service.metrics_snapshot()["counters"]
        # One simulated job: the service's aggregate work counters ARE
        # this job's merged telemetry totals.
        assert telemetry["counters"] == counters
        assert counters["fault_evaluations"] > 0

    def test_cache_hit_job_gets_its_own_trace(self, traced_service):
        """A duplicate served from the cache still leaves a (tiny) trace."""
        service, port, trace_dir = traced_service
        _, first = _post(port, dict(JOB))
        _wait_done(port, first["job_id"])
        status, second = _post(port, dict(JOB))
        assert status == 201
        record = _wait_done(port, second["job_id"])
        assert record["state"] == "done"
        assert record["cache_hit"] is True
        service.stop()

        spans = read_spans(trace_dir)
        ids = trace_ids(spans)
        assert len(ids) == 2
        by_hit = {}
        for trace_id in ids:
            (root,) = stitch_trace(spans, trace_id)
            assert root.name == "job"
            by_hit[bool(root.attrs["cache_hit"])] = root
        assert set(by_hit) == {False, True}
        hit_names = {node.name for node, _ in by_hit[True].walk()}
        assert "simulate" not in hit_names  # never re-simulated

    def test_untraced_service_writes_nothing(self, tmp_path):
        service = FaultSimService(
            ServeConfig(state_dir=str(tmp_path / "state"), workers=0)
        )
        record, _ = service.submit({"circuit": "s27", "random_patterns": 8})
        assert record.trace_id is None
        service.drain()
        assert service.status(record.job_id).state == "done"
