"""Span tracing: contexts, writers, stitching, collapsed stacks.

The cross-process contract under test: a :class:`TraceContext` minted at
an entry point and carried (pickled, or as a bare trace id) into other
processes yields span files that :func:`stitch_trace` reassembles into
one tree — no runtime coordination, the directory is the only shared
state.
"""

import json
import os

import pytest

from repro.obs.span import (
    SpanWriter,
    TraceContext,
    collapsed_stacks,
    new_id,
    read_spans,
    span_files,
    stitch_trace,
    trace_ids,
    write_collapsed,
)


class TestTraceContext:
    def test_root_span_id_is_trace_id(self):
        ctx = TraceContext.new_trace()
        assert ctx.span_id == ctx.trace_id
        assert ctx.parent_id is None

    def test_root_of_rebuilds_root(self):
        """Any process holding just the trace id can parent under the root."""
        ctx = TraceContext.new_trace()
        rebuilt = TraceContext.root_of(ctx.trace_id)
        assert rebuilt == ctx

    def test_child_keeps_trace_and_parents_under_self(self):
        root = TraceContext.new_trace()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    def test_picklable(self):
        import pickle

        ctx = TraceContext.new_trace().child()
        assert pickle.loads(pickle.dumps(ctx)) == ctx

    def test_ids_are_unique_hex(self):
        ids = {new_id() for _ in range(256)}
        assert len(ids) == 256
        assert all(len(i) == 16 and int(i, 16) >= 0 for i in ids)


class TestSpanWriter:
    def test_emit_and_read_roundtrip(self, tmp_path):
        writer = SpanWriter(str(tmp_path), label="t")
        root = TraceContext.new_trace()
        writer.emit("work", root, 1.0, 2.5, faults=7)
        writer.close()
        spans = read_spans(str(tmp_path))
        assert len(spans) == 1
        record = spans[0]
        assert record["name"] == "work"
        assert record["trace_id"] == root.trace_id
        assert record["attrs"] == {"faults": 7}
        assert record["pid"] == os.getpid()

    def test_span_context_manager_emits_on_exit(self, tmp_path):
        writer = SpanWriter(str(tmp_path), label="t")
        root = TraceContext.new_trace()
        with writer.span("step", root) as handle:
            handle.attrs["k"] = "v"
        writer.close()
        (record,) = read_spans(str(tmp_path))
        assert record["name"] == "step"
        assert record["parent_id"] == root.span_id
        assert record["attrs"] == {"k": "v"}
        assert record["end"] >= record["start"]

    def test_file_named_by_label_and_pid(self, tmp_path):
        writer = SpanWriter(str(tmp_path), label="serve")
        writer.emit("x", TraceContext.new_trace(), 0.0, 1.0)
        writer.close()
        (path,) = span_files(str(tmp_path))
        assert os.path.basename(path) == f"spans-serve-{os.getpid()}.jsonl"

    def test_no_file_until_first_span(self, tmp_path):
        SpanWriter(str(tmp_path), label="idle")
        assert span_files(str(tmp_path)) == []

    def test_non_span_lines_ignored(self, tmp_path):
        path = tmp_path / "spans-x-1.jsonl"
        path.write_text(json.dumps({"t": "other"}) + "\n")
        assert read_spans(str(tmp_path)) == []


class TestStitching:
    def _emit_tree(self, tmp_path):
        """root -> (a -> a1, b) written across two 'processes' (files)."""
        root = TraceContext.new_trace()
        a = root.child()
        first = SpanWriter(str(tmp_path), label="one")
        first.emit("root", root, 0.0, 10.0)
        first.emit("a", a, 1.0, 5.0)
        first.close()
        second = SpanWriter(str(tmp_path), label="two")
        # A different file, as a shard worker process would produce.
        second.path = os.path.join(str(tmp_path), "spans-two-99999.jsonl")
        second.emit("a1", a.child(), 2.0, 3.0)
        second.emit("b", root.child(), 6.0, 9.0)
        second.close()
        return root

    def test_cross_file_tree(self, tmp_path):
        root_ctx = self._emit_tree(tmp_path)
        spans = read_spans(str(tmp_path))
        (root,) = stitch_trace(spans, root_ctx.trace_id)
        assert root.name == "root"
        assert [child.name for child in root.children] == ["a", "b"]
        assert [child.name for child in root.children[0].children] == ["a1"]

    def test_children_sorted_by_start(self, tmp_path):
        root = TraceContext.new_trace()
        writer = SpanWriter(str(tmp_path), label="t")
        writer.emit("root", root, 0.0, 10.0)
        writer.emit("late", root.child(), 5.0, 6.0)
        writer.emit("early", root.child(), 1.0, 2.0)
        writer.close()
        (tree,) = stitch_trace(read_spans(str(tmp_path)))
        assert [child.name for child in tree.children] == ["early", "late"]

    def test_orphan_parents_become_roots(self, tmp_path):
        """A trace whose entry point never emitted a root span still stitches."""
        root = TraceContext.new_trace()
        writer = SpanWriter(str(tmp_path), label="t")
        writer.emit("only-child", root.child(), 1.0, 2.0)
        writer.close()
        (tree,) = stitch_trace(read_spans(str(tmp_path)))
        assert tree.name == "only-child"
        assert tree.parent_id == root.trace_id

    def test_multiple_traces_require_explicit_id(self, tmp_path):
        writer = SpanWriter(str(tmp_path), label="t")
        first, second = TraceContext.new_trace(), TraceContext.new_trace()
        writer.emit("x", first, 0.0, 1.0)
        writer.emit("y", second, 0.0, 1.0)
        writer.close()
        spans = read_spans(str(tmp_path))
        assert trace_ids(spans) == [first.trace_id, second.trace_id]
        with pytest.raises(ValueError, match="2 traces"):
            stitch_trace(spans)
        (only,) = stitch_trace(spans, second.trace_id)
        assert only.name == "y"

    def test_self_time_excludes_children(self, tmp_path):
        root_ctx = self._emit_tree(tmp_path)
        (root,) = stitch_trace(read_spans(str(tmp_path)), root_ctx.trace_id)
        # root spans 0-10 with children a (1-5) and b (6-9): 3s of self time.
        assert root.duration == pytest.approx(10.0)
        assert root.self_time() == pytest.approx(3.0)


class TestCollapsedStacks:
    def test_folded_paths_and_self_time_micros(self, tmp_path):
        root = TraceContext.new_trace()
        a = root.child()
        writer = SpanWriter(str(tmp_path), label="t")
        writer.emit("root", root, 0.0, 10.0)
        writer.emit("a", a, 1.0, 5.0)
        writer.emit("a1", a.child(), 2.0, 3.0)
        writer.close()
        roots = stitch_trace(read_spans(str(tmp_path)))
        stacks = collapsed_stacks(roots)
        assert stacks == {
            "root": 6_000_000,
            "root;a": 3_000_000,
            "root;a;a1": 1_000_000,
        }

    def test_write_collapsed_format(self, tmp_path):
        root = TraceContext.new_trace()
        writer = SpanWriter(str(tmp_path), label="t")
        writer.emit("work", root, 0.0, 1.0)
        writer.close()
        out = tmp_path / "folded.txt"
        written = write_collapsed(stitch_trace(read_spans(str(tmp_path))), str(out))
        assert written == 1
        stack, micros = out.read_text().strip().rsplit(" ", 1)
        assert stack == "work"
        assert int(micros) == 1_000_000

    def test_semicolons_in_names_sanitized(self, tmp_path):
        root = TraceContext.new_trace()
        writer = SpanWriter(str(tmp_path), label="t")
        writer.emit("a;b", root, 0.0, 1.0)
        writer.close()
        stacks = collapsed_stacks(stitch_trace(read_spans(str(tmp_path))))
        assert list(stacks) == ["a,b"]
