"""Benchmark JSON drift guard: every bench emits the repro-bench/1 schema.

Three layers:

1. a static scan — every ``benchmarks/bench_*.py`` must route its output
   through ``benchlib`` (directly, or via the pytest ``run_once`` helper
   whose session hook calls ``benchlib.write_bench_json``), so a new
   bench cannot quietly invent its own JSON shape;
2. an emission test — the standalone benches that write their own file
   are run in-process on a tiny workload and the file they produce is
   validated against the schema;
3. an artifact sweep — any ``BENCH_*.json`` already sitting at the repo
   root (e.g. produced by a full benchmark run or downloaded from CI)
   is validated too.
"""

import glob
import importlib
import json
import os
import re
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_DIR = os.path.join(REPO_ROOT, "benchmarks")
BENCH_SOURCES = sorted(glob.glob(os.path.join(BENCH_DIR, "bench_*.py")))

SCHEMA = "repro-bench/1"
REQUIRED_KEYS = {
    "schema", "name", "config", "samples",
    "p50_seconds", "p95_seconds", "timestamp", "detail",
}


def validate_bench_payload(payload, origin=""):
    """Assert one parsed BENCH json conforms to repro-bench/1."""
    assert isinstance(payload, dict), origin
    missing = REQUIRED_KEYS - set(payload)
    assert not missing, f"{origin}: missing keys {sorted(missing)}"
    assert payload["schema"] == SCHEMA, origin
    assert isinstance(payload["name"], str) and payload["name"], origin
    assert isinstance(payload["config"], dict), origin
    assert isinstance(payload["detail"], dict), origin
    assert isinstance(payload["samples"], list) and payload["samples"], origin
    for sample in payload["samples"]:
        assert isinstance(sample["label"], str) and sample["label"], origin
        assert isinstance(sample["seconds"], (int, float)), origin
        assert sample["seconds"] >= 0, origin
    assert isinstance(payload["p50_seconds"], (int, float)), origin
    assert isinstance(payload["p95_seconds"], (int, float)), origin
    assert payload["p50_seconds"] <= payload["p95_seconds"] or len(
        payload["samples"]
    ) == 1, origin
    # ISO-8601 UTC timestamp, second resolution.
    assert re.match(
        r"^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\+00:00$", payload["timestamp"]
    ), f"{origin}: bad timestamp {payload['timestamp']!r}"


def _bench_module(name):
    if BENCH_DIR not in sys.path:
        sys.path.insert(0, BENCH_DIR)
    return importlib.import_module(name)


def test_every_bench_script_routes_through_benchlib():
    assert BENCH_SOURCES, "no bench scripts found"
    for path in BENCH_SOURCES:
        with open(path) as handle:
            source = handle.read()
        assert "import benchlib" in source or "run_once" in source, (
            f"{os.path.basename(path)} does not use benchlib/run_once — "
            f"it would emit non-repro-bench/1 output"
        )


def test_write_bench_json_emits_schema(tmp_path):
    benchlib = _bench_module("benchlib")
    out = tmp_path / "BENCH_unit.json"
    path = benchlib.write_bench_json(
        "unit",
        config={"k": 1},
        samples=[{"label": "a", "seconds": 0.25},
                 {"label": "b", "seconds": 0.5}],
        detail={"rows": []},
        out=str(out),
    )
    with open(path) as handle:
        payload = json.load(handle)
    validate_bench_payload(payload, origin="benchlib.write_bench_json")
    assert payload["p50_seconds"] == 0.25  # nearest-rank percentile
    assert payload["name"] == "unit"


@pytest.mark.parametrize(
    "module_name,argv",
    [
        (
            "bench_vector_speedup",
            ["--circuits", "s27", "--patterns", "12", "--widths", "8",
             "--skip-ablation", "--repeats", "1"],
        ),
        (
            "bench_prune_untestable",
            ["--quick", "--circuits", "prunable12", "--patterns", "8"],
        ),
        (
            "bench_fault_collapse",
            ["--quick", "--circuits", "s27", "--patterns", "8"],
        ),
    ],
)
def test_standalone_bench_emits_valid_json(tmp_path, module_name, argv):
    module = _bench_module(module_name)
    out = tmp_path / f"BENCH_{module_name}.json"
    assert module.main(argv + ["--out", str(out)]) == 0
    with open(out) as handle:
        payload = json.load(handle)
    validate_bench_payload(payload, origin=module_name)


def test_repo_root_artifacts_if_any():
    """Validate whatever BENCH_*.json a previous benchmark run left behind."""
    artifacts = sorted(glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json")))
    if not artifacts:
        pytest.skip("no BENCH_*.json artifacts at the repo root")
    for path in artifacts:
        with open(path) as handle:
            payload = json.load(handle)
        validate_bench_payload(payload, origin=os.path.basename(path))
