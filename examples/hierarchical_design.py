#!/usr/bin/env python3
"""Hierarchical design entry and hierarchy-aware fault simulation.

The paper's conclusion: "More efficient fault simulation is possible when
hierarchical design information is utilized because the concurrent fault
simulation method is inherently suited to hierarchical designs."

This example builds a 4-bit ripple-carry accumulator out of full-adder
modules, flattens it, and fault-simulates it three ways: flat (csim-V),
with fanout-free macro extraction (csim-MV), and with macros preassigned
along the *instance boundaries*.  The designer's blocks — full adders are
reconvergent, so tree-growth can never capture them whole — collapse into
single table-driven macros, cutting evaluations further.

Run:  python examples/hierarchical_design.py
"""

from repro.circuit.hierarchy import HierarchicalBuilder, Module
from repro.circuit.macro import extract_macros
from repro.circuit.netlist import CircuitBuilder
from repro.concurrent.engine import ConcurrentFaultSimulator
from repro.concurrent.options import CSIM_MV, CSIM_V, SimOptions
from repro.harness.reporting import format_table
from repro.logic.tables import GateType
from repro.patterns import random_sequence

WIDTH = 4


def full_adder_sum():
    builder = CircuitBuilder("fa_sum")
    for name in ("a", "b", "cin"):
        builder.add_input(name)
    builder.add_gate("axb", GateType.XOR, ["a", "b"])
    builder.add_gate("s", GateType.XOR, ["axb", "cin"])
    builder.set_output("s")
    return Module("fa_sum", builder.build())


def full_adder_carry():
    builder = CircuitBuilder("fa_carry")
    for name in ("a", "b", "cin"):
        builder.add_input(name)
    builder.add_gate("ab", GateType.AND, ["a", "b"])
    builder.add_gate("bc", GateType.AND, ["b", "cin"])
    builder.add_gate("ca", GateType.AND, ["cin", "a"])
    builder.add_gate("cout", GateType.OR, ["ab", "bc", "ca"])
    builder.set_output("cout")
    return Module("fa_carry", builder.build())


def build_accumulator():
    """acc <= clear ? 0 : acc + in; ripple carry, carry-out observed.

    The synchronous clear is not decoration: an XOR accumulator is
    X-opaque, so without it the register could never leave the unknown
    power-up state and nothing would ever be detectable.
    """
    top = HierarchicalBuilder(f"acc{WIDTH}")
    sum_module, carry_module = full_adder_sum(), full_adder_carry()
    for bit in range(WIDTH):
        top.add_input(f"in{bit}")
    top.add_input("clear_n")
    top.add_gate("c0", GateType.CONST0, [])
    carry = "c0"
    for bit in range(WIDTH):
        bindings = {"a": f"in{bit}", "b": f"acc{bit}", "cin": carry}
        top.add_instance(f"sum{bit}", sum_module, bindings)
        top.add_instance(f"carry{bit}", carry_module, bindings)
        top.add_gate(f"d{bit}", GateType.AND, [f"sum{bit}", "clear_n"])
        top.add_dff(f"acc{bit}", f"d{bit}")
        top.set_output(f"sum{bit}")
        carry = f"carry{bit}"
    top.set_output(carry)
    return top.build()


def main() -> None:
    hierarchy = build_accumulator()
    flat = hierarchy.flat
    regions = hierarchy.instance_regions()
    print(f"{flat!r}")
    print(f"instances: {len(hierarchy.instances)}, "
          f"eligible as macro regions: {len(regions)}\n")

    tests = random_sequence(flat, 150, seed=3)
    runs = []

    flat_run = ConcurrentFaultSimulator(flat, options=CSIM_V).run(tests)
    runs.append(("flat (csim-V)", flat_run, None))

    ffr_macro = extract_macros(flat, max_inputs=4)
    ffr_run = ConcurrentFaultSimulator(flat, options=CSIM_MV).run(tests)
    runs.append(("fanout-free macros (csim-MV)", ffr_run, len(ffr_macro.regions)))

    inst_macro = extract_macros(flat, max_inputs=4, preassigned=regions)
    inst_run = ConcurrentFaultSimulator(
        flat, options=SimOptions(split_lists=True), macro=inst_macro
    ).run(tests)
    runs.append(("instance-boundary macros", inst_run, len(inst_macro.regions)))

    reference = flat_run.detected
    for _, run, _ in runs:
        assert run.detected == reference, "engines must agree"

    print(
        format_table(
            ["partition", "regions", "good evals", "fault evals", "CPU s", "cvg %"],
            [
                (
                    label,
                    regions_count if regions_count is not None else flat.num_combinational,
                    run.counters.good_evaluations,
                    run.counters.fault_evaluations,
                    run.wall_seconds,
                    100.0 * run.coverage,
                )
                for label, run, regions_count in runs
            ],
            title="Hierarchy-aware macro partitioning (identical detections)",
        )
    )
    print(
        "\nFull adders are reconvergent, so fanout-free growth splits them;"
        "\nthe instance boundaries hand the partitioner the designer's own"
        "\nblocks and the evaluation counts drop again."
    )


if __name__ == "__main__":
    main()
