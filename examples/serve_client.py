"""End-to-end client for a running ``repro serve`` instance.

Submits a mixed batch of jobs — several circuits, engines and seeds, with
deliberate duplicates — then polls them to completion, fetches every
result, and **asserts** the serving contract:

* every fetched result is bit-identical to a direct in-process run of the
  same inputs (the service may batch, shard or cache however it likes,
  but the bytes must not change);
* the duplicate submissions were served from the result cache without
  re-simulation (``/metrics`` shows cache hits and fewer simulated jobs
  than submitted jobs);
* ``/healthz`` stays ok throughout.

CI boots the server and runs this script against it::

    python -m repro serve --port 8350 &
    python examples/serve_client.py --base http://127.0.0.1:8350

Exit code 0 means every assertion held.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import urllib.error
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.circuit.library import load
from repro.harness.runner import run_stuck_at, run_transition
from repro.patterns.random_gen import random_sequence
from repro.serve import serialize_result

#: The mixed workload: (payload, duplicate_count).  Duplicates are
#: resubmitted verbatim, so each group shares one cache entry.
WORKLOAD = [
    ({"circuit": "s27", "random_patterns": 48, "seed": 1}, 3),
    ({"circuit": "s27", "random_patterns": 48, "seed": 2, "engine": "csim"}, 1),
    ({"circuit": "s27", "random_patterns": 32, "seed": 3, "engine": "PROOFS"}, 2),
    ({"circuit": "s27", "random_patterns": 24, "seed": 4, "transition": True}, 2),
    ({"circuit": "s298", "scale": 0.25, "random_patterns": 24, "seed": 5}, 2),
    ({"circuit": "s27", "random_patterns": 48, "seed": 6, "jobs": 2}, 1),
]


def http(base: str, method: str, path: str, payload=None, timeout: float = 60.0):
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        f"{base}{path}",
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def wait_until_up(base: str, deadline_seconds: float) -> None:
    deadline = time.time() + deadline_seconds
    while time.time() < deadline:
        try:
            status, _ = http(base, "GET", "/healthz", timeout=2.0)
            if status == 200:
                return
        except (urllib.error.URLError, OSError):
            pass
        time.sleep(0.25)
    raise SystemExit(f"server at {base} did not come up in {deadline_seconds}s")


def direct_result(payload: dict) -> bytes:
    """What a direct in-process run of *payload* produces, canonical bytes."""
    circuit = load(payload["circuit"], scale=payload.get("scale", 1.0))
    tests = random_sequence(circuit, payload["random_patterns"], seed=payload["seed"])
    if payload.get("transition"):
        result = run_transition(circuit, tests)
    else:
        result = run_stuck_at(circuit, tests, payload.get("engine", "csim-MV"))
    return serialize_result(result, circuit)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--base", default="http://127.0.0.1:8350")
    parser.add_argument("--timeout", type=float, default=120.0, help="per-job wait")
    parser.add_argument("--startup-timeout", type=float, default=30.0)
    args = parser.parse_args(argv)
    base = args.base.rstrip("/")

    wait_until_up(base, args.startup_timeout)
    print(f"server at {base} is up")

    # -- submit the whole mix up front (duplicates included) ------------
    submitted = []  # (job_id, payload)
    for payload, copies in WORKLOAD:
        for _ in range(copies):
            status, body = http(base, "POST", "/jobs", payload)
            assert status in (200, 201), f"submit failed: {status} {body!r}"
            record = json.loads(body)
            submitted.append((record["job_id"], payload))
            print(f"  submitted {record['job_id']} state={record['state']}")
    total = len(submitted)
    distinct = len(WORKLOAD)
    print(f"submitted {total} jobs ({distinct} distinct specs)")

    # -- poll to completion --------------------------------------------
    deadline = time.time() + args.timeout
    pending = {job_id for job_id, _ in submitted}
    while pending and time.time() < deadline:
        for job_id in sorted(pending):
            status, body = http(base, "GET", f"/jobs/{job_id}")
            assert status == 200, f"status poll failed: {status}"
            record = json.loads(body)
            if record["state"] in ("done", "failed", "cancelled"):
                assert record["state"] == "done", (
                    f"{job_id} ended {record['state']}: {record.get('error')}"
                )
                pending.discard(job_id)
        if pending:
            time.sleep(0.2)
    assert not pending, f"jobs never finished: {sorted(pending)}"
    print(f"all {total} jobs done")

    # -- bit-identity: every result equals the direct in-process run ----
    for job_id, payload in submitted:
        status, blob = http(base, "GET", f"/jobs/{job_id}/result")
        assert status == 200, f"result fetch failed for {job_id}: {status}"
        expected = direct_result(payload)
        assert blob == expected, (
            f"{job_id} differs from the direct run "
            f"({len(blob)} vs {len(expected)} bytes)"
        )
    print(f"bit-identity: {total}/{total} results match direct in-process runs")

    # -- cache: duplicates were answered without re-simulation ----------
    status, body = http(base, "GET", "/metrics")
    assert status == 200
    metrics = json.loads(body)
    expected_hits = total - distinct
    simulated = metrics["jobs"]["simulated"]
    hits = metrics["cache"]["hits"]
    assert simulated == distinct, (
        f"expected {distinct} simulated jobs, metrics report {simulated}"
    )
    assert hits >= expected_hits, (
        f"expected >= {expected_hits} cache hits, metrics report {hits}"
    )
    print(
        f"cache: {hits} hits, {simulated} simulated of {total} submitted "
        f"(hit rate {metrics['cache']['hit_rate']:.2f})"
    )

    status, body = http(base, "GET", "/healthz")
    assert status == 200 and json.loads(body)["status"] == "ok"
    print("healthz ok — e2e PASSED")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
