#!/usr/bin/env python3
"""Fault diagnosis: locate a defect from tester failures.

The downstream workflow that motivates full-universe fault simulation:
build a fault dictionary for the production test set (every fault, every
vector, no dropping — the workload that stresses a fault simulator the
most), then play defective devices against it.

This example builds the dictionary, "manufactures" defective devices by
injecting random faults, observes their tester responses, and diagnoses
them — including an intermittent device whose observed failures are a
proper subset of the simulated signature.

Run:  python examples/fault_diagnosis.py [circuit-name]
"""

import random
import sys

from repro import fault_name, load_circuit, stuck_at_universe
from repro.diagnosis import build_dictionary, diagnose
from repro.patterns import generate_tests


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "s298"
    circuit = load_circuit(name, scale=0.5)
    tests, coverage = generate_tests(circuit, effort="standard", seed=1992)
    print(
        f"{circuit!r}: production test set of {len(tests)} vectors "
        f"({100 * coverage:.1f}% stuck-at coverage)"
    )

    faults = stuck_at_universe(circuit)
    dictionary = build_dictionary(circuit, tests, faults)
    groups = dictionary.indistinguishable_groups()
    print(
        f"dictionary: {len(dictionary.detected_faults())} detectable faults, "
        f"{len(groups)} indistinguishable groups "
        f"(resolution limit of this test set)\n"
    )

    rng = random.Random(42)
    detectable = dictionary.detected_faults()

    print("=== defective devices, clean observations ===")
    for device in range(3):
        culprit = rng.choice(detectable)
        observed = dictionary.signature(culprit)
        result = diagnose(dictionary, observed)
        verdict = "FOUND" if culprit in result.exact_candidates else "missed"
        print(
            f"device {device}: injected {fault_name(circuit, culprit):<18} "
            f"{len(observed):>3} failures -> {result.summary()} [{verdict}]"
        )

    print("\n=== an intermittent device (every other failure observed) ===")
    culprit = rng.choice([f for f in detectable if len(dictionary.signature(f)) >= 4])
    full_signature = sorted(dictionary.signature(culprit))
    observed = full_signature[::2]
    result = diagnose(dictionary, observed, top=5)
    print(f"injected {fault_name(circuit, culprit)}; observed {len(observed)}/"
          f"{len(full_signature)} of its failures")
    for rank, candidate in enumerate(result.candidates, start=1):
        marker = "  <-- culprit" if candidate.fault == culprit else ""
        print(
            f"  #{rank} {fault_name(circuit, candidate.fault):<18} "
            f"score {candidate.score:.3f} "
            f"(matched {candidate.matched}, missed {candidate.missed}, "
            f"extra {candidate.extra}){marker}"
        )


if __name__ == "__main__":
    main()
