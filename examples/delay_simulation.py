#!/usr/bin/env python3
"""Arbitrary-delay simulation: hazards, critical paths, clock margins.

The paper's case for concurrent simulation is its generality: "the circuit
gates may have arbitrary but known propagation delays".  This example uses
the two-phase event-driven simulator to (1) expose a static hazard that
zero-delay simulation cannot see, and (2) find the minimum clock period of
a benchmark circuit empirically by shrinking the period until the
flip-flops start latching stale values.

Run:  python examples/delay_simulation.py
"""

from repro import EventSimulator, LogicSimulator, load_circuit
from repro.circuit.netlist import CircuitBuilder
from repro.logic.tables import GateType
from repro.logic.values import ONE, ZERO
from repro.patterns import random_sequence
from repro.sim.delays import DelayModel, typed_delays


def hazard_demo() -> None:
    builder = CircuitBuilder("hazard")
    builder.add_input("a")
    builder.add_gate("n", GateType.NOT, ["a"])
    builder.add_gate("g", GateType.AND, ["a", "n"])
    builder.set_output("g")
    circuit = builder.build()

    delays = DelayModel(circuit, {circuit.index_of("n"): 5, circuit.index_of("g"): 1})
    sim = EventSimulator(circuit, delays, record=True)
    sim.set_input(0, ZERO, at_time=0)
    sim.run()
    sim.set_input(0, ONE, at_time=sim.time + 1)
    sim.run()

    g = circuit.index_of("g")
    pulse = [(t, v) for t, gate, v in sim.trace if gate == g]
    print("g = AND(a, NOT(a)) is constant 0 under zero delay, but with a")
    print("slow inverter the rising edge of a produces a hazard pulse:")
    for time, value in pulse:
        print(f"  t={time}: g -> {value}")
    print()


def clock_margin_demo() -> None:
    circuit = load_circuit("s298", scale=0.5)
    delays = typed_delays(circuit)
    tests = random_sequence(circuit, 40, seed=3)

    reference = LogicSimulator(circuit)
    expected = reference.run(tests.vectors)

    print(f"Shrinking the clock period of {circuit.name} "
          f"(levels={circuit.num_levels}, typed delays):")
    critical = None
    for period in range(delays.max_delay * circuit.num_levels + 5, 0, -5):
        sim = EventSimulator(circuit, delays)
        sampled = sim.run_sequence(tests.vectors, period)
        ok = sampled == expected
        if ok:
            critical = period
        else:
            print(f"  period {period:4}: MISSAMPLES (stale/unknown values latched)")
            break
    print(f"  period {critical:4}: matches zero-delay functional behaviour")
    print("\nThe event-driven engine models short-period operation honestly —")
    print("exactly the physical behaviour behind the transition-fault model.")


if __name__ == "__main__":
    hazard_demo()
    clock_margin_demo()
