#!/usr/bin/env python3
"""Transition-fault study: how good are stuck-at tests at catching delays?

Section 3 / Table 6 of the paper: transition (gross-delay) faults need the
right two-cycle sequences, and test sets built for stuck-at coverage catch
"in general much less than 50%" of them.  This example measures the gap on
several circuits and breaks the detected transition faults down by
direction (slow-to-rise vs slow-to-fall).

Run:  python examples/transition_fault_study.py
"""

from repro import (
    CSIM_MV,
    ConcurrentFaultSimulator,
    TransitionFaultSimulator,
    all_transition_faults,
    load_circuit,
)
from repro.faults.model import FaultKind
from repro.harness.reporting import format_table
from repro.patterns import generate_tests

CIRCUITS = ("s27", "s298", "s344")


def main() -> None:
    rows = []
    for name in CIRCUITS:
        circuit = load_circuit(name, scale=0.5)
        tests, _ = generate_tests(circuit, effort="standard", seed=1992)
        stuck = ConcurrentFaultSimulator(circuit, options=CSIM_MV).run(tests)
        faults = all_transition_faults(circuit)
        transition = TransitionFaultSimulator(circuit, faults).run(tests)
        rises = sum(
            1
            for fault in transition.detected
            if fault.kind is FaultKind.SLOW_TO_RISE
        )
        falls = len(transition.detected) - rises
        rows.append(
            (
                name,
                len(tests),
                100.0 * stuck.coverage,
                100.0 * transition.coverage,
                rises,
                falls,
            )
        )

    print(
        format_table(
            ["ckt", "#ptns", "stuck-at cvg%", "transition cvg%", "STR det", "STF det"],
            rows,
            title="Stuck-at test sets applied to the transition fault universe",
        )
    )
    print(
        "\nThe transition coverage trails the stuck-at coverage on every "
        "circuit:\nstuck-at tests only need to excite a value, transition "
        "tests need the\nright value *change* followed by propagation in "
        "the same cycle."
    )


if __name__ == "__main__":
    main()
