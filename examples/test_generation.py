#!/usr/bin/env python3
"""Coverage-directed test generation for a sequential circuit.

The scenario behind the paper's Tables 3/4: a test engineer needs a
*compact* test set with high stuck-at coverage for a synchronous circuit.
This example builds one with the greedy fault-simulation-guided generator,
then shows the detection profile — most faults fall in the first vectors,
which is exactly why event-driven fault dropping pays off.

Run:  python examples/test_generation.py [circuit-name]
"""

import sys

from repro import CSIM_MV, ConcurrentFaultSimulator, fault_name, load_circuit
from repro.harness.reporting import format_table
from repro.patterns import generate_tests, random_sequence
from repro.patterns.vectors import format_vectors


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "s298"
    circuit = load_circuit(name, scale=0.5)
    print(f"Generating tests for {circuit!r} ...")

    tests, coverage = generate_tests(circuit, effort="high", seed=1992)
    print(f"-> {len(tests)} vectors reach {100 * coverage:.1f}% stuck-at coverage\n")

    # Replay through the csim-MV engine for the detection profile.
    simulator = ConcurrentFaultSimulator(circuit, options=CSIM_MV)
    result = simulator.run(tests)
    profile = result.detection_profile()
    buckets = {}
    for cycle, count in profile.items():
        buckets[(cycle - 1) // 16] = buckets.get((cycle - 1) // 16, 0) + count
    print(
        format_table(
            ["vectors", "first detections"],
            [(f"{16 * b + 1}-{16 * b + 16}", n) for b, n in sorted(buckets.items())],
            title="Detection profile (front-loaded, as deterministic sets are)",
        )
    )

    # Compare against plain random patterns of the same length.
    random_result = ConcurrentFaultSimulator(circuit, options=CSIM_MV).run(
        random_sequence(circuit, len(tests), seed=77)
    )
    print(
        f"\nSame-length random set: {100 * random_result.coverage:.1f}% "
        f"vs directed {100 * result.coverage:.1f}%"
    )

    hardest = result.undetected(simulator.faults)[:8]
    if hardest:
        print("\nSample undetected faults (ATPG targets):")
        for fault in hardest:
            print(f"  {fault_name(circuit, fault)}")

    print("\nFirst vectors of the generated set:")
    print(format_vectors(tests.prefix(min(8, len(tests)))))


if __name__ == "__main__":
    main()
