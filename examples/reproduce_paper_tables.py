#!/usr/bin/env python3
"""Regenerate every table of the paper's evaluation section.

Runs the Table 2-6 drivers from ``repro.harness.tables`` and prints the
combined report.  ``--quick`` shrinks the circuit list and scale for a
fast sanity run; ``--scale`` sets the synthetic-circuit scale (1.0 =
published ISCAS-89 sizes; expect a long pure-Python run at full scale).

Run:  python examples/reproduce_paper_tables.py [--quick] [--scale S]
"""

import argparse
import sys
import time

from repro.harness import tables


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small subset, reduced scale")
    parser.add_argument("--scale", type=float, default=None, help="circuit scale (default 1.0, or 0.25 with --quick)")
    parser.add_argument("--out", type=str, default=None, help="also write the report to this file")
    args = parser.parse_args()

    scale = args.scale if args.scale is not None else (0.25 if args.quick else 1.0)
    started = time.time()
    report = tables.all_tables(scale=scale, quick=args.quick)
    elapsed = time.time() - started
    footer = (
        f"\n(regenerated in {elapsed:.1f}s at scale={scale}; "
        "run with --scale 1.0 for published circuit sizes)"
    )
    print(report + footer)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report + footer + "\n")
        print(f"\nreport written to {args.out}", file=sys.stderr)


if __name__ == "__main__":
    main()
