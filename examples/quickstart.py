#!/usr/bin/env python3
"""Quickstart: fault-simulate a benchmark circuit with every engine.

Loads the (real, embedded) ISCAS-89 s27 circuit, builds its collapsed
stuck-at fault universe, applies 100 random test vectors, and runs the
four concurrent variants from the paper plus the PROOFS baseline and the
serial oracle on the identical workload.  All six report the same
detections; they differ in how much work it took.

Run:  python examples/quickstart.py [circuit-name]
"""

import sys

from repro import (
    CSIM,
    CSIM_M,
    CSIM_MV,
    CSIM_V,
    ConcurrentFaultSimulator,
    ProofsSimulator,
    load_circuit,
    simulate_serial,
    stuck_at_universe,
)
from repro.harness.reporting import format_table
from repro.patterns import random_sequence


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "s27"
    circuit = load_circuit(name)
    faults = stuck_at_universe(circuit)
    tests = random_sequence(circuit, 100, seed=7)
    print(f"{circuit!r}: {len(faults)} collapsed stuck-at faults, {len(tests)} vectors\n")

    results = []
    for options in (CSIM, CSIM_V, CSIM_M, CSIM_MV):
        results.append(ConcurrentFaultSimulator(circuit, faults, options).run(tests))
    results.append(ProofsSimulator(circuit, faults).run(tests))
    results.append(simulate_serial(circuit, tests.vectors, faults))

    reference = results[0].detected
    for result in results:
        assert result.detected == reference, f"{result.engine} disagrees!"

    print(
        format_table(
            ["engine", "detected", "coverage %", "CPU s", "work ops", "peak MB"],
            [
                (
                    r.engine,
                    r.num_detected,
                    100.0 * r.coverage,
                    r.wall_seconds,
                    r.counters.total_work(),
                    r.memory.peak_megabytes,
                )
                for r in results
            ],
            title=f"Stuck-at fault simulation of {circuit.name}",
        )
    )
    print("\nAll engines agree on the detected fault set.")


if __name__ == "__main__":
    main()
