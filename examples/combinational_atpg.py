#!/usr/bin/env python3
"""Deterministic ATPG with PODEM: full classification of a fault universe.

The paper's Table 4 tests came from the authors' deterministic test
generator (reference [14]).  This example runs the combinational core of
such a flow on a generated combinational circuit: for every collapsed
stuck-at fault, PODEM either produces a vector or *proves* the fault
untestable (redundant), so the final classification is complete —
``detected ∪ redundant = universe`` — something no amount of random
pattern generation can promise.

The generated set is then post-compacted (coverage-exact) and compared
against random patterns of the same length.

Run:  python examples/combinational_atpg.py
"""

import random

from repro.baselines.deductive import simulate_deductive
from repro.circuit.generate import random_circuit
from repro.faults import fault_name, stuck_at_universe
from repro.harness.reporting import format_table
from repro.patterns import (
    compact_tests,
    generate_deterministic_tests,
    random_sequence,
)


def main() -> None:
    circuit = random_circuit(
        random.Random(2718), num_inputs=8, num_gates=60, num_dffs=0,
        num_outputs=14, name="comb60",
    )
    faults = stuck_at_universe(circuit)
    print(f"{circuit!r}: {len(faults)} collapsed stuck-at faults\n")

    tests, redundant, aborted = generate_deterministic_tests(circuit, faults)
    assert not aborted
    atpg = simulate_deductive(circuit, tests.vectors, faults)
    print(
        f"PODEM: {len(tests)} vectors, {atpg.num_detected} detected, "
        f"{len(redundant)} proven redundant "
        f"(classification complete: {atpg.num_detected + len(redundant)}"
        f"/{len(faults)})"
    )
    if redundant:
        print("redundant faults:", ", ".join(fault_name(circuit, f) for f in redundant[:6]),
              "..." if len(redundant) > 6 else "")

    compacted = compact_tests(circuit, tests, faults, block_length=4)
    compacted_result = simulate_deductive(circuit, compacted.vectors, faults)
    random_result = simulate_deductive(
        circuit, random_sequence(circuit, len(compacted), seed=5).vectors, faults
    )

    print()
    print(
        format_table(
            ["test set", "#vectors", "detected", "coverage %"],
            [
                ("PODEM", len(tests), atpg.num_detected, 100.0 * atpg.coverage),
                (
                    "PODEM + compaction",
                    len(compacted),
                    compacted_result.num_detected,
                    100.0 * compacted_result.coverage,
                ),
                (
                    "random, same length",
                    len(compacted),
                    random_result.num_detected,
                    100.0 * random_result.coverage,
                ),
            ],
        )
    )
    detectable = len(faults) - len(redundant)
    print(
        f"\nOf the {detectable} detectable faults, the deterministic set "
        f"covers 100%;\nthe equal-length random set reaches "
        f"{100.0 * random_result.num_detected / detectable:.1f}%."
    )


if __name__ == "__main__":
    main()
