"""Observability overhead — the zero-overhead-when-disabled contract.

Three configurations of the same workload:

* ``off``       — no tracer at all (the seed behaviour);
* ``noop``      — the :class:`Tracer` base class attached (hooks fire,
                  bodies are empty) — the cost of the guard + dispatch;
* ``recording`` — a full :class:`RecordingTracer` (aggregates, per-cycle
                  rows; no per-event record stream).

The work counters must be identical across all three — instrumentation
observes the simulation, it never changes it — and the untraced run must
not pay for the feature: its wall time stays within noise of the seed.
Wall-clock assertions are generous (pure-Python timing on shared CI), the
counter equality is exact.
"""

import pytest

from conftest import SCALE, run_once
from repro.concurrent.engine import ConcurrentFaultSimulator
from repro.concurrent.options import CSIM_MV
from repro.harness.runner import workload_circuit, workload_tests
from repro.obs import RecordingTracer, Tracer, metrics_summary

CIRCUITS = ("s298", "s526")

MODES = ("off", "noop", "recording")


def _tracer_for(mode):
    if mode == "off":
        return None
    if mode == "noop":
        return Tracer()
    return RecordingTracer()


@pytest.mark.parametrize("name", CIRCUITS)
@pytest.mark.parametrize("mode", MODES)
def test_obs_overhead(benchmark, name, mode):
    circuit = workload_circuit(name, SCALE)
    tests = workload_tests(name, SCALE, "deterministic")
    tracer = _tracer_for(mode)

    def run():
        return ConcurrentFaultSimulator(
            circuit, options=CSIM_MV, tracer=tracer
        ).run(tests)

    result = run_once(benchmark, run)
    extra = dict(
        circuit=name,
        mode=mode,
        total_work=result.counters.total_work(),
        wall_seconds=result.wall_seconds,
    )
    if result.telemetry is not None:
        extra["telemetry"] = metrics_summary(result.telemetry)
    benchmark.extra_info.update(extra)


@pytest.mark.parametrize("name", CIRCUITS)
def test_tracing_never_changes_the_simulation(name):
    circuit = workload_circuit(name, SCALE)
    tests = workload_tests(name, SCALE, "deterministic")
    results = {
        mode: ConcurrentFaultSimulator(
            circuit, options=CSIM_MV, tracer=_tracer_for(mode)
        ).run(tests)
        for mode in MODES
    }
    reference = results["off"]
    for mode in ("noop", "recording"):
        assert results[mode].detected == reference.detected
        assert results[mode].counters == reference.counters
    # And the recording tracer reconciled exactly.
    assert results["recording"].telemetry.totals == reference.counters


@pytest.mark.parametrize("name", CIRCUITS)
def test_disabled_tracing_is_free(name):
    """Median-of-5 untraced wall time stays within noise of the seed path.

    The untraced step() is a separate code path containing no tracer
    logic, so 'free' here means: no systematic slowdown beyond timer
    noise.  The bound is deliberately loose for shared CI machines.
    """
    import statistics

    circuit = workload_circuit(name, SCALE)
    tests = workload_tests(name, SCALE, "deterministic")

    def median_wall(tracer):
        times = []
        for _ in range(5):
            result = ConcurrentFaultSimulator(
                circuit, options=CSIM_MV, tracer=tracer
            ).run(tests)
            times.append(result.wall_seconds)
        return statistics.median(times)

    untraced = median_wall(None)
    noop = median_wall(Tracer())
    # The untraced path must not be slower than the no-op-traced path by
    # more than generous jitter; it contains strictly less code.
    assert untraced <= noop * 1.5 + 0.05
