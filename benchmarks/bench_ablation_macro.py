"""Ablation A1 — macro extraction (the ``-M`` improvement).

Section 2.2's claims: macros cut evaluation work *and*, on large circuits,
memory (elements collapse); on small circuits memory may rise slightly
(table overhead).  Benchmarked as csim-V vs csim-MV on a small and a large
workload, plus a sweep over the macro input cap.
"""

import pytest

from conftest import SCALE, run_once
from repro.circuit.macro import extract_macros
from repro.concurrent.engine import ConcurrentFaultSimulator
from repro.concurrent.options import CSIM_MV, CSIM_V
from repro.harness.runner import workload_circuit, workload_tests

CIRCUITS = ("s298", "s1238")


@pytest.mark.parametrize("name", CIRCUITS)
@pytest.mark.parametrize("variant", ("csim-V", "csim-MV"))
def test_macro_ablation(benchmark, name, variant):
    """Simulation time only: the engine (and for -MV, its functional-fault
    tables) is built once outside the timed region, as a simulator reused
    across test sets would amortize it."""
    circuit = workload_circuit(name, SCALE)
    tests = workload_tests(name, SCALE, "deterministic")
    options = CSIM_MV if variant == "csim-MV" else CSIM_V
    simulator = ConcurrentFaultSimulator(circuit, options=options)

    def run():
        simulator.reset()
        return simulator.run(tests)

    result = run_once(benchmark, run)
    benchmark.extra_info.update(
        circuit=name,
        variant=variant,
        peak_elements=result.memory.peak_elements,
        work=result.counters.total_work(),
    )


@pytest.mark.parametrize("cap", (2, 4, 6))
def test_macro_cap_sweep(benchmark, cap):
    """How the input cap trades table size against collapsed gates."""
    circuit = workload_circuit("s526", SCALE)
    tests = workload_tests("s526", SCALE, "deterministic")
    options = CSIM_MV.with_(macro_max_inputs=cap)

    def run():
        return ConcurrentFaultSimulator(circuit, options=options).run(tests)

    result = run_once(benchmark, run)
    macro = extract_macros(circuit, cap)
    benchmark.extra_info.update(
        cap=cap,
        regions=len(macro.regions),
        flat_gates=circuit.num_combinational,
        work=result.counters.total_work(),
    )


def test_macro_reduces_evaluation_work():
    """The core claim, asserted deterministically."""
    circuit = workload_circuit("s1238", SCALE)
    tests = workload_tests("s1238", SCALE, "deterministic")
    flat = ConcurrentFaultSimulator(circuit, options=CSIM_V).run(tests)
    macro = ConcurrentFaultSimulator(circuit, options=CSIM_MV).run(tests)
    assert macro.detected == flat.detected
    assert macro.counters.good_evaluations < flat.counters.good_evaluations
    assert macro.counters.fault_evaluations <= flat.counters.fault_evaluations
