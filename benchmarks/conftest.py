"""Shared benchmark configuration.

Workloads are deterministic and cached (see ``repro.harness.runner``), so a
benchmark measures engine time only.  ``REPRO_BENCH_SCALE`` (default 0.25)
shrinks the synthetic circuits proportionally; set it to 1.0 to run the
paper-scale workloads (slow in pure Python — hours, not minutes).

Every benchmark runs the engine once per round (``pedantic`` with a single
iteration): fault simulation of a whole test set is a macro-benchmark, and
the deterministic work counters — not sub-millisecond timing noise — carry
the comparison.

Every timed invocation is also recorded into the common BENCH schema
(see ``benchlib``): at session end each ``bench_<name>.py`` module that
ran writes repo-root ``BENCH_<name>.json`` with its samples and
p50/p95 — the same shape the standalone campaign scripts produce.
"""

import os
import sys
import time

import pytest

import benchlib

#: Circuit scale for all benchmark workloads.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))

#: Circuits benchmarked per table (small-to-mid subset; override per file).
TABLE3_SUBSET = ("s298", "s344", "s382", "s526")
TABLE4_SUBSET = ("s298", "s344", "s382")
TABLE6_SUBSET = ("s298", "s344", "s382")


def _bench_name_of_caller() -> str:
    """The ``bench_<x>.py`` module name of ``run_once``'s caller, sans prefix."""
    frame = sys._getframe(2)
    stem = os.path.splitext(os.path.basename(frame.f_globals.get("__file__", "")))[0]
    return stem[len("bench_"):] if stem.startswith("bench_") else stem


def run_once(benchmark, function, *args, **kwargs):
    """Run a macro-benchmark: one warm-up-free invocation per round.

    The wall time of the (single) round is recorded into the common
    BENCH sample registry under the calling module's name.
    """
    name = _bench_name_of_caller()
    started = time.perf_counter()
    result = benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
    benchlib.record_sample(
        name,
        label=getattr(benchmark, "name", function.__name__),
        seconds=time.perf_counter() - started,
    )
    return result


@pytest.fixture
def scale():
    return SCALE


def pytest_sessionfinish(session, exitstatus):
    """Write one common-schema BENCH json per benchmark module that ran."""
    for name in benchlib.recorded_names():
        path = benchlib.write_bench_json(name, config={"scale": SCALE})
        print(f"\nwrote {path}")
