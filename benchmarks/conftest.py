"""Shared benchmark configuration.

Workloads are deterministic and cached (see ``repro.harness.runner``), so a
benchmark measures engine time only.  ``REPRO_BENCH_SCALE`` (default 0.25)
shrinks the synthetic circuits proportionally; set it to 1.0 to run the
paper-scale workloads (slow in pure Python — hours, not minutes).

Every benchmark runs the engine once per round (``pedantic`` with a single
iteration): fault simulation of a whole test set is a macro-benchmark, and
the deterministic work counters — not sub-millisecond timing noise — carry
the comparison.
"""

import os

import pytest

#: Circuit scale for all benchmark workloads.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))

#: Circuits benchmarked per table (small-to-mid subset; override per file).
TABLE3_SUBSET = ("s298", "s344", "s382", "s526")
TABLE4_SUBSET = ("s298", "s344", "s382")
TABLE6_SUBSET = ("s298", "s344", "s382")


def run_once(benchmark, function, *args, **kwargs):
    """Run a macro-benchmark: one warm-up-free invocation per round."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def scale():
    return SCALE
