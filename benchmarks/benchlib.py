"""The common ``BENCH_<name>.json`` schema every benchmark writes.

One schema for the whole suite — pytest-driven macro-benchmarks (via the
``run_once`` helper in ``conftest.py``, which records every timed
invocation here) and the standalone campaign scripts alike — so CI can
collect ``BENCH_*.json`` artifacts and diff runs without per-benchmark
parsing:

.. code-block:: json

    {
      "schema": "repro-bench/1",
      "name": "obs_overhead",
      "config": {"scale": 0.25},
      "samples": [{"label": "test_obs_overhead[off-s298]", "seconds": 0.41}],
      "p50_seconds": 0.41,
      "p95_seconds": 0.52,
      "timestamp": "2026-08-08T12:00:00+00:00",
      "detail": {}
    }

``samples`` is the ground truth (one entry per timed measurement);
``p50_seconds``/``p95_seconds`` summarize it; ``detail`` carries whatever
benchmark-specific payload (scaling curves, coverage tables) the old
per-script formats reported.  Files land at the repository root as
``BENCH_<name>.json`` unless an explicit path is given.
"""

from __future__ import annotations

import json
import os
import time
from datetime import datetime, timezone
from typing import Dict, List, Optional

#: Schema tag; bump on incompatible change.
SCHEMA = "repro-bench/1"

#: Where BENCH_*.json files land by default.
REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))

#: Module-level sample registry for pytest-driven benchmarks:
#: name -> list of {"label", "seconds"} samples, in execution order.
_SAMPLES: Dict[str, List[dict]] = {}


def percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of *values* (0.0 for an empty list)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, int(round(fraction * len(ordered))))
    return ordered[min(rank, len(ordered)) - 1]


def record_sample(name: str, label: str, seconds: float, **extra: object) -> None:
    """Append one timed measurement to benchmark *name*'s sample list."""
    sample = {"label": label, "seconds": round(seconds, 6)}
    sample.update(extra)
    _SAMPLES.setdefault(name, []).append(sample)


def recorded_names() -> List[str]:
    """Benchmark names with at least one recorded sample."""
    return sorted(_SAMPLES)


def bench_report(
    name: str,
    config: Optional[dict] = None,
    samples: Optional[List[dict]] = None,
    detail: Optional[dict] = None,
) -> dict:
    """The common-schema report document for one benchmark."""
    if samples is None:
        samples = list(_SAMPLES.get(name, []))
    seconds = [float(sample["seconds"]) for sample in samples]
    return {
        "schema": SCHEMA,
        "name": name,
        "config": dict(config or {}),
        "samples": samples,
        "p50_seconds": round(percentile(seconds, 0.50), 6),
        "p95_seconds": round(percentile(seconds, 0.95), 6),
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "detail": dict(detail or {}),
    }


def write_bench_json(
    name: str,
    config: Optional[dict] = None,
    samples: Optional[List[dict]] = None,
    detail: Optional[dict] = None,
    out: Optional[str] = None,
) -> str:
    """Write ``BENCH_<name>.json`` (repo root unless *out*); returns the path."""
    report = bench_report(name, config, samples, detail)
    path = out or os.path.join(REPO_ROOT, f"BENCH_{name}.json")
    tmp_path = f"{path}.tmp.{os.getpid()}"
    with open(tmp_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp_path, path)
    return path


def timed(function, *args, **kwargs):
    """``(seconds, result)`` of one *function* call."""
    started = time.perf_counter()
    result = function(*args, **kwargs)
    return time.perf_counter() - started, result
