"""Table 2 — benchmark circuit statistics.

Regenerates the paper's circuit/fault inventory: per circuit, the gate,
flip-flop and collapsed-fault counts plus the deterministic test-set size.
The benchmark times universe construction + collapsing (the preprocessing
every simulator run pays once).
"""

import pytest

from conftest import SCALE, TABLE3_SUBSET, run_once
from repro.circuit.stats import circuit_stats
from repro.faults.universe import stuck_at_universe
from repro.harness.runner import workload_circuit, workload_tests


@pytest.mark.parametrize("name", TABLE3_SUBSET)
def test_fault_universe_construction(benchmark, name):
    circuit = workload_circuit(name, SCALE)
    faults = run_once(benchmark, stuck_at_universe, circuit)
    stats = circuit_stats(circuit)
    assert len(faults) > stats.num_gates  # at least one fault per gate
    benchmark.extra_info.update(
        circuit=name,
        gates=stats.num_gates,
        dffs=stats.num_dffs,
        collapsed_faults=len(faults),
    )


@pytest.mark.parametrize("name", TABLE3_SUBSET)
def test_table2_row(benchmark, name):
    """The full Table 2 row: stats + universe + test-set length."""

    def row():
        circuit = workload_circuit(name, SCALE)
        stats = circuit_stats(circuit)
        faults = stuck_at_universe(circuit)
        tests = workload_tests(name, SCALE, "deterministic")
        return stats, faults, tests

    stats, faults, tests = run_once(benchmark, row)
    benchmark.extra_info.update(
        circuit=name,
        pis=stats.num_inputs,
        pos=stats.num_outputs,
        dffs=stats.num_dffs,
        gates=stats.num_gates,
        faults=len(faults),
        patterns=len(tests),
    )
