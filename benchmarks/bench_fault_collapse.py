"""Structural fault collapsing — collapse ratio and wall-time speedup.

Measures, per circuit and per engine, what the static equivalence /
dominance analysis (``repro.analyze.collapse``) buys a campaign over the
*full* stuck-at universe:

* the collapse ratio — what fraction of the full universe the
  representatives replace (equivalence and dominance separately);
* the end-to-end wall-clock speedup of simulating representatives and
  expanding, asserting — always — that the equivalence-expanded
  detections are bit-identical to the full-universe run;
* for dominance, that the expansion is conservative (never a detection
  the full run did not make).

Usage::

    python benchmarks/bench_fault_collapse.py             # mid-size subset
    python benchmarks/bench_fault_collapse.py --quick     # CI-sized
    python benchmarks/bench_fault_collapse.py --out BENCH_fault_collapse.json

Timing numbers are best-of-``--repeats`` wall seconds; the expansion step
is included in the collapsed timing (it is part of the campaign).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import benchlib

from repro.analyze import collapse_universe, expand_verified
from repro.faults.universe import all_stuck_at_faults
from repro.harness.runner import run_stuck_at, workload_circuit, workload_tests


def _best_of(repeats, function, *args, **kwargs):
    """Best wall seconds plus the (deterministic) result."""
    function(*args, **kwargs)  # warm-up: caches and code paths
    best = None
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = function(*args, **kwargs)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _collapsed_run(circuit, tests, engine, collapsed):
    """One collapsed campaign: simulate representatives, expand. The unit
    being timed — expansion is part of the work the analysis trades for,
    including the serial-oracle confirmation of dominance proposals."""
    reps = run_stuck_at(
        circuit, tests, engine, faults=list(collapsed.representatives)
    )
    expanded, _audit = expand_verified(circuit, tests.vectors, collapsed, reps)
    return expanded


def measure_circuit(name, scale, patterns, engines, repeats):
    circuit = workload_circuit(name, scale)
    tests = workload_tests(name, scale, "random", length=patterns)
    universe = list(all_stuck_at_faults(circuit))
    equivalence = collapse_universe(circuit, universe)
    dominance = collapse_universe(circuit, universe, mode="dominance")

    rows = []
    for engine in engines:
        full_wall, full = _best_of(
            repeats, run_stuck_at, circuit, tests, engine, faults=universe
        )
        equiv_wall, equiv = _best_of(
            repeats, _collapsed_run, circuit, tests, engine, equivalence
        )
        assert equiv.detected == full.detected, (
            f"{name}/{engine}: equivalence expansion is not bit-identical "
            "— collapsing is unsound"
        )
        assert equiv.potentially_detected == full.potentially_detected

        dom_wall, dom = _best_of(
            repeats, _collapsed_run, circuit, tests, engine, dominance
        )
        assert set(dom.detected.items()) <= set(full.detected.items()), (
            f"{name}/{engine}: dominance expansion claimed a detection the "
            "full run did not make"
        )

        rows.append(
            {
                "circuit": name,
                "engine": engine,
                "faults_full": equivalence.num_universe,
                "faults_equivalence": equivalence.num_representatives,
                "faults_dominance": dominance.num_representatives,
                "equivalence_ratio_pct": round(100.0 * equivalence.ratio, 2),
                "dominance_ratio_pct": round(100.0 * dominance.ratio, 2),
                "full_wall_seconds": round(full_wall, 4),
                "equivalence_wall_seconds": round(equiv_wall, 4),
                "dominance_wall_seconds": round(dom_wall, 4),
                "equivalence_speedup": round(full_wall / equiv_wall, 3),
                "dominance_speedup": round(full_wall / dom_wall, 3),
                "detected": len(full.detected),
                "dominance_detected": len(dom.detected),
            }
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--circuits", nargs="+", default=None, help="circuit names to measure"
    )
    parser.add_argument("--engines", nargs="+", default=None)
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--patterns", type=int, default=None, help="random vectors")
    parser.add_argument("--repeats", type=int, default=2, help="best-of repeats")
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized workload (seconds, not minutes)"
    )
    parser.add_argument(
        "--out", default="BENCH_fault_collapse.json", help="BENCH json output path"
    )
    args = parser.parse_args(argv)

    circuits = args.circuits or (
        ["s298", "s386"] if args.quick else ["s298", "s386", "s526", "s641", "s1238"]
    )
    engines = args.engines or (["csim-MV"] if args.quick else ["csim", "csim-MV", "vsim"])
    # Full scale by default: the collapse ratio is a structural property of
    # the real netlists, not of their rescaled synthetic variants.
    scale = args.scale if args.scale is not None else (0.15 if args.quick else 1.0)
    patterns = args.patterns or (32 if args.quick else 128)
    repeats = 1 if args.quick else args.repeats

    rows = []
    for name in circuits:
        for row in measure_circuit(name, scale, patterns, engines, repeats):
            rows.append(row)
            print(
                f"  {row['circuit']}/{row['engine']}: "
                f"equivalence {row['faults_equivalence']}/{row['faults_full']} "
                f"(-{row['equivalence_ratio_pct']:.1f}%) "
                f"speedup={row['equivalence_speedup']:.2f}x  "
                f"dominance -{row['dominance_ratio_pct']:.1f}% "
                f"speedup={row['dominance_speedup']:.2f}x"
            )

    path = benchlib.write_bench_json(
        "fault_collapse",
        config={"scale": scale, "patterns": patterns, "engines": engines},
        samples=[
            {
                "label": f"{row['circuit']}:{row['engine']}:{kind}",
                "seconds": row[f"{kind}_wall_seconds"],
            }
            for row in rows
            for kind in ("full", "equivalence", "dominance")
        ],
        detail={"results": rows},
        out=args.out,
    )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
