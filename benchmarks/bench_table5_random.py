"""Table 5 — random-pattern simulation on the largest circuit.

The paper runs 10k+ random patterns on s35932 and observes that the
concurrent simulator's memory requirement is *lower* than under
deterministic patterns "because faults are rather slowly activated".  The
pure-Python stand-in uses a scaled s35932 and a pattern-count sweep.
"""

import pytest

from conftest import run_once
from repro.harness.runner import run_stuck_at, workload_circuit, workload_tests

#: s35932 is 16k gates at full scale; 0.04 keeps a pure-Python sweep sane
#: while staying the largest circuit in the benchmark set.
LARGE_SCALE = 0.04
CIRCUIT = "s35932"
PATTERN_COUNTS = (100, 200, 400)


@pytest.mark.parametrize("count", PATTERN_COUNTS)
@pytest.mark.parametrize("engine", ("csim-MV", "PROOFS"))
def test_table5_random_patterns(benchmark, count, engine):
    circuit = workload_circuit(CIRCUIT, LARGE_SCALE)
    tests = workload_tests(CIRCUIT, LARGE_SCALE, "random", length=count, seed=1992)
    result = run_once(benchmark, run_stuck_at, circuit, tests, engine)
    benchmark.extra_info.update(
        circuit=CIRCUIT,
        engine=engine,
        patterns=count,
        coverage=round(100.0 * result.coverage, 2),
        peak_mb=round(result.memory.peak_megabytes, 4),
    )


def test_table5_memory_observation():
    """The paper's Table 5 remark: random patterns activate faults slowly,
    so the concurrent simulator's peak element count under random patterns
    stays below its peak under coverage-directed (deterministic) tests of
    comparable length."""
    circuit = workload_circuit(CIRCUIT, LARGE_SCALE)
    deterministic = workload_tests(CIRCUIT, LARGE_SCALE, "deterministic")
    count = max(50, len(deterministic))
    random_tests = workload_tests(CIRCUIT, LARGE_SCALE, "random", length=count)
    det_result = run_stuck_at(circuit, deterministic, "csim-MV")
    rnd_result = run_stuck_at(circuit, random_tests, "csim-MV")
    # Peak elements per applied vector: the activation-rate comparison.
    det_rate = det_result.memory.peak_elements
    rnd_rate = rnd_result.memory.peak_elements
    assert rnd_rate <= det_rate * 1.5  # random must not blow past deterministic
