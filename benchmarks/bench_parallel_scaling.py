"""Parallel scaling — wall-clock speedup of the fault-sharded runner vs K.

Runs the same deterministic workload single-process and under the
multiprocessing executor for each worker count, records the speedup
curve into a BENCH json, and asserts — always, speed is worthless if the
answer changed — that every merged result's detections are bit-identical
to the single-process run.

Besides wall clock the json records the *work overhead*: each worker
simulates its own good machine, so the summed work counters exceed the
single-process run's; the overhead ratio bounds the achievable speedup
(see ``repro.parallel.merge`` for why this replication is inherent).

Usage::

    python benchmarks/bench_parallel_scaling.py             # s526, K=1,2,4
    python benchmarks/bench_parallel_scaling.py --quick     # s298, K=1,2
    python benchmarks/bench_parallel_scaling.py --out BENCH_parallel.json

On a single-core container the speedup will be ~1/overhead (honest
numbers are the point; ``cpu_count`` is recorded alongside).
"""

from __future__ import annotations

import argparse
import multiprocessing
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import benchlib

from repro.harness.runner import run_stuck_at, workload_circuit, workload_tests
from repro.parallel import run_parallel
from repro.parallel.sharding import STRATEGIES


def measure(circuit, tests, jobs, strategy, repeats):
    """Best-of-*repeats* wall seconds plus the (deterministic) result."""
    best = None
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        if jobs == 1:
            result = run_stuck_at(circuit, tests, "csim-MV")
        else:
            result = run_parallel(
                circuit, tests, "csim-MV", jobs=jobs, shard_strategy=strategy
            )
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--circuit", default=None, help="workload circuit name")
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--patterns", type=int, default=None, help="random vectors")
    parser.add_argument(
        "--jobs",
        type=int,
        nargs="+",
        default=None,
        metavar="K",
        help="worker counts to measure (default 1 2 4; --quick: 1 2)",
    )
    parser.add_argument(
        "--shard-strategy", choices=STRATEGIES, default="level-balanced"
    )
    parser.add_argument("--repeats", type=int, default=2, help="best-of repeats")
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized workload (seconds, not minutes)"
    )
    parser.add_argument(
        "--out",
        default="BENCH_parallel_scaling.json",
        help="BENCH json output path",
    )
    args = parser.parse_args(argv)

    circuit_name = args.circuit or ("s298" if args.quick else "s526")
    scale = args.scale if args.scale is not None else (0.15 if args.quick else 0.5)
    patterns = args.patterns or (48 if args.quick else 192)
    worker_counts = args.jobs or ([1, 2] if args.quick else [1, 2, 4])
    repeats = 1 if args.quick else args.repeats

    circuit = workload_circuit(circuit_name, scale)
    tests = workload_tests(circuit_name, scale, "random", length=patterns)

    rows = []
    base_wall = None
    base_result = None
    for jobs in worker_counts:
        wall, result = measure(circuit, tests, jobs, args.shard_strategy, repeats)
        if base_result is None:
            base_wall, base_result = wall, result
        else:
            assert result.detected == base_result.detected, (
                f"jobs={jobs} changed the detections — parallel run is wrong"
            )
        overhead = result.counters.total_work() / base_result.counters.total_work()
        rows.append(
            {
                "jobs": jobs,
                "wall_seconds": round(wall, 4),
                "speedup": round(base_wall / wall, 3),
                "efficiency": round(base_wall / wall / jobs, 3),
                "work_overhead": round(overhead, 3),
                "detected": len(result.detected),
            }
        )
        print(
            f"  jobs={jobs}: {wall:.3f}s  speedup={rows[-1]['speedup']:.2f}x  "
            f"work-overhead={overhead:.2f}x"
        )

    path = benchlib.write_bench_json(
        "parallel_scaling",
        config={
            "circuit": circuit_name,
            "scale": scale,
            "patterns": patterns,
            "strategy": args.shard_strategy,
            "cpu_count": multiprocessing.cpu_count(),
        },
        samples=[
            {"label": f"jobs={row['jobs']}", "seconds": row["wall_seconds"]}
            for row in rows
        ],
        detail={
            "coverage_pct": round(100.0 * base_result.coverage, 2),
            "results": rows,
        },
        out=args.out,
    )
    print(f"wrote {path} (cpu_count={multiprocessing.cpu_count()})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
