"""Serve throughput — jobs/sec and latency percentiles for the service.

Drives an in-process :class:`FaultSimService` (no HTTP, so the numbers
measure the serving machinery, not socket overhead) with a mixed workload
containing duplicate submissions, across worker counts and with the two
amortization layers toggled:

* ``batch+cache`` — request batching and the content-addressed result
  cache enabled (the production configuration);
* ``no-batch``    — ``max_batch=1``: every job pays its own setup;
* ``no-cache``    — duplicates re-simulate instead of hitting the cache.

For every configuration the BENCH json records jobs/sec, p50/p95
end-to-end latency (submit to terminal state), and how many jobs actually
simulated versus were served from cache.  Result bytes are asserted
identical across all configurations — the whole point of the serving
contract is that batching, caching and worker counts never change the
answer.

Workers are threads sharing the GIL, so CPU-bound simulation does not
scale with worker count; the win measured here is amortization (cache
hits, shared circuit setup), and the honest flat-line at higher worker
counts is recorded as-is.

Usage::

    python benchmarks/bench_serve_throughput.py            # 1/4/8 workers
    python benchmarks/bench_serve_throughput.py --quick    # CI-sized
    python benchmarks/bench_serve_throughput.py --out BENCH_serve.json
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import benchlib

from repro.serve import FaultSimService, ServeConfig

CONFIGS = (
    ("batch+cache", {"max_batch": 8, "cache_results": True}),
    ("no-batch", {"max_batch": 1, "cache_results": True}),
    ("no-cache", {"max_batch": 8, "cache_results": False}),
)


def workload(distinct: int, copies: int, patterns: int) -> list:
    """*distinct* specs, each submitted *copies* times (duplicates hit cache)."""
    payloads = []
    for seed in range(distinct):
        payloads.append(
            {"circuit": "s27", "random_patterns": patterns, "seed": seed}
        )
    return [dict(payload) for payload in payloads for _ in range(copies)]


def percentile(sorted_values: list, fraction: float) -> float:
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(fraction * len(sorted_values))))
    return sorted_values[rank]


def run_config(state_root: str, workers: int, options: dict, payloads: list) -> dict:
    state_dir = os.path.join(state_root, f"w{workers}-" + "-".join(
        f"{key}={value}" for key, value in sorted(options.items())
    ))
    service = FaultSimService(
        ServeConfig(
            state_dir=state_dir,
            workers=workers,
            queue_limit=len(payloads) + 8,
            **options,
        )
    )
    started = time.perf_counter()
    records = [service.submit(dict(payload))[0] for payload in payloads]
    if workers == 0:
        service.drain()
    else:
        service.start()
        deadline = time.time() + 600
        while time.time() < deadline:
            states = [service.status(record.job_id).state for record in records]
            if all(state in ("done", "failed", "cancelled") for state in states):
                break
            time.sleep(0.01)
        service.stop()
    wall = time.perf_counter() - started

    finals = [service.status(record.job_id) for record in records]
    bad = [record.job_id for record in finals if record.state != "done"]
    assert not bad, f"jobs did not finish clean: {bad}"
    latencies = sorted(record.finished_at - record.created_at for record in finals)
    metrics = service.metrics_snapshot()
    blobs = {
        record.job_id: service.result_bytes(record.job_id) for record in finals
    }
    return {
        "wall_seconds": wall,
        "jobs_per_sec": len(payloads) / wall,
        "p50_seconds": percentile(latencies, 0.50),
        "p95_seconds": percentile(latencies, 0.95),
        "simulated": metrics["jobs"]["simulated"],
        "cache_hits": metrics["cache"]["hits"],
        "mean_batch_size": metrics["batch"]["mean_size"],
        "_blobs": blobs,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers", type=int, nargs="+", default=None, metavar="N",
        help="worker counts to measure (default 1 4 8; --quick: 1 2)",
    )
    parser.add_argument("--distinct", type=int, default=None, help="distinct specs")
    parser.add_argument("--copies", type=int, default=2, help="copies of each spec")
    parser.add_argument("--patterns", type=int, default=None, help="vectors per job")
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized workload (seconds, not minutes)"
    )
    parser.add_argument(
        "--out", default="BENCH_serve_throughput.json", help="BENCH json output path"
    )
    args = parser.parse_args(argv)

    worker_counts = args.workers or ([1, 2] if args.quick else [1, 4, 8])
    distinct = args.distinct or (6 if args.quick else 16)
    patterns = args.patterns or (16 if args.quick else 48)
    payloads = workload(distinct, args.copies, patterns)
    print(
        f"workload: {len(payloads)} jobs ({distinct} distinct x {args.copies} copies), "
        f"{patterns} vectors each"
    )

    state_root = tempfile.mkdtemp(prefix="bench-serve-")
    rows = []
    reference_blobs = None
    try:
        for workers in worker_counts:
            for label, options in CONFIGS:
                measured = run_config(state_root, workers, options, payloads)
                blobs = measured.pop("_blobs")
                # Identity across every configuration: the workload's set of
                # result documents must match the first configuration measured.
                if reference_blobs is None:
                    reference_blobs = set(blobs.values())
                else:
                    assert set(blobs.values()) == reference_blobs, (
                        f"{label} w={workers} changed result bytes"
                    )
                row = {
                    "workers": workers,
                    "config": label,
                    **{
                        key: (round(value, 4) if isinstance(value, float) else value)
                        for key, value in measured.items()
                    },
                }
                rows.append(row)
                print(
                    f"  workers={workers} {label:12s} "
                    f"{row['jobs_per_sec']:7.2f} jobs/s  "
                    f"p50={row['p50_seconds']:.3f}s p95={row['p95_seconds']:.3f}s  "
                    f"simulated={row['simulated']} hits={row['cache_hits']}"
                )
    finally:
        shutil.rmtree(state_root, ignore_errors=True)

    path = benchlib.write_bench_json(
        "serve_throughput",
        config={
            "jobs": len(payloads),
            "distinct_specs": distinct,
            "copies": args.copies,
            "patterns": patterns,
        },
        samples=[
            {
                "label": f"workers={row['workers']} {row['config']}",
                "seconds": row["wall_seconds"],
            }
            for row in rows
        ],
        detail={"results": rows},
        out=args.out,
    )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
