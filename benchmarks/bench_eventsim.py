"""Ablation A4 — arbitrary-delay event-driven simulation.

Section 2's generality argument: concurrent simulation's home turf is
arbitrary-delay simulation, which pattern-parallel methods cannot do.
This benchmarks the two-phase timing-queue simulator against the
zero-delay cycle simulator on the same workloads, and measures how delay
spread (glitching) grows event counts.
"""

import pytest

from conftest import SCALE, run_once
from repro.harness.runner import workload_circuit, workload_tests
from repro.sim.delays import random_delays, typed_delays, unit_delays
from repro.sim.eventsim import EventSimulator
from repro.sim.logicsim import LogicSimulator

CIRCUIT = "s526"


def _period(circuit, delays):
    return delays.max_delay * circuit.num_levels + 5


@pytest.mark.parametrize(
    "model_name,model_factory",
    [("unit", unit_delays), ("typed", typed_delays), ("random", random_delays)],
)
def test_eventsim_delay_models(benchmark, model_name, model_factory):
    circuit = workload_circuit(CIRCUIT, SCALE)
    tests = workload_tests(CIRCUIT, SCALE, "random", length=50)
    delays = model_factory(circuit)

    def run():
        sim = EventSimulator(circuit, delays)
        sim.run_sequence(tests.vectors, period=_period(circuit, delays))
        return sim

    sim = run_once(benchmark, run)
    benchmark.extra_info.update(
        model=model_name,
        events=sim.events_processed,
        evaluations=sim.evaluations,
    )


def test_zero_delay_baseline(benchmark):
    circuit = workload_circuit(CIRCUIT, SCALE)
    tests = workload_tests(CIRCUIT, SCALE, "random", length=50)

    def run():
        return LogicSimulator(circuit).run(tests.vectors)

    run_once(benchmark, run)


def test_concurrent_arbitrary_delay_fault_sim(benchmark):
    """The paradigm's home turf: one concurrent pass over the whole fault
    universe under arbitrary delays, against which serial per-fault event
    simulation is hopeless (see the work-counter comparison in
    tests/test_event_engine.py)."""
    from repro.concurrent.event_engine import ConcurrentEventFaultSimulator

    circuit = workload_circuit("s298", SCALE)
    tests = workload_tests("s298", SCALE, "random", length=40)
    delays = typed_delays(circuit)
    period = delays.max_delay * circuit.num_levels + 5

    def run():
        return ConcurrentEventFaultSimulator(circuit, delays=delays).run(
            tests.vectors, period
        )

    result = run_once(benchmark, run)
    benchmark.extra_info.update(
        coverage=round(100.0 * result.coverage, 2),
        events=result.counters.events,
        work=result.counters.total_work(),
    )


def test_delay_models_change_activity_not_function():
    """Different delay assignments reshuffle transient activity (glitches
    appear and disappear with path-delay differences) but, at an ample
    clock period, never the sampled behaviour."""
    circuit = workload_circuit(CIRCUIT, SCALE)
    tests = workload_tests(CIRCUIT, SCALE, "random", length=30)
    unit_model = unit_delays(circuit)
    uniform = EventSimulator(circuit, unit_model)
    sampled_uniform = uniform.run_sequence(tests.vectors, _period(circuit, unit_model))
    spread_model = random_delays(circuit, lo=1, hi=8)
    spread = EventSimulator(circuit, spread_model)
    sampled_spread = spread.run_sequence(tests.vectors, _period(circuit, spread_model))
    assert sampled_uniform == sampled_spread
    assert uniform.events_processed > 0 and spread.events_processed > 0
    assert uniform.events_processed != spread.events_processed
