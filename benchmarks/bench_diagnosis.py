"""Diagnosis subsystem — dictionary build cost and query latency.

Measures the two halves of the diagnosis workflow:

* **build**: wall seconds for the full (no-drop) dictionary build over the
  complete pin-level stuck-at universe, full universe vs equivalence
  representatives, at 1 and 4 shards — asserting, always, that every
  variant encodes to bit-identical ``repro-dict/1`` artifact bytes;
* **diagnose**: per-query latency of :func:`repro.diagnosis.store.
  diagnosis_report` against a warm (already built and decoded)
  dictionary — one query per detected fault, reported as p50/p95.

Usage::

    python benchmarks/bench_diagnosis.py             # mid-size subset
    python benchmarks/bench_diagnosis.py --quick     # CI-sized
    python benchmarks/bench_diagnosis.py --out BENCH_diagnosis.json

Build numbers are best-of-``--repeats`` wall seconds; expansion onto the
full universe is included in the collapsed timings (it is part of the
build), as is artifact encoding.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import benchlib

from repro.diagnosis import assemble_dictionary, build_responses
from repro.diagnosis.store import diagnosis_report, encode_dictionary
from repro.faults.universe import all_stuck_at_faults
from repro.harness.runner import workload_circuit, workload_tests


def _best_of(repeats, function, *args, **kwargs):
    """Best wall seconds plus the (deterministic) result."""
    function(*args, **kwargs)  # warm-up: caches and code paths
    best = None
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = function(*args, **kwargs)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _build_artifact(circuit, tests, universe, collapse, jobs):
    """One dictionary build, end to end: simulate (sharded when jobs > 1),
    expand class members when collapsed, encode the artifact bytes."""
    responses = build_responses(
        circuit, tests, faults=universe, collapse=collapse, jobs=jobs
    )
    blob = encode_dictionary(
        circuit.name, len(tests), responses, "full", collapse=collapse
    )
    return responses, blob


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def measure_circuit(name, scale, patterns, jobs_list, repeats):
    circuit = workload_circuit(name, scale)
    tests = workload_tests(name, scale, "random", length=patterns)
    universe = list(all_stuck_at_faults(circuit))

    build_rows = []
    reference_blob = None
    reference_responses = None
    for collapse in (None, "equivalence"):
        for jobs in jobs_list:
            wall, (responses, blob) = _best_of(
                repeats, _build_artifact, circuit, tests, universe, collapse, jobs
            )
            if reference_responses is None:
                reference_blob = blob
                reference_responses = responses
            else:
                # The manifest records the collapse mode, so whole-artifact
                # bytes differ across modes by that one field; the response
                # maps themselves must agree exactly.
                assert responses == reference_responses, (
                    f"{name}: collapse={collapse} jobs={jobs} responses are "
                    "not bit-identical to the full serial build — the "
                    "dictionary builder is unsound"
                )
                if collapse is None:
                    assert blob == reference_blob, (
                        f"{name}: jobs={jobs} artifact differs from the "
                        "serial build — encoding is order-dependent"
                    )
            mode = "collapsed" if collapse else "full"
            build_rows.append(
                {
                    "circuit": name,
                    "mode": mode,
                    "jobs": jobs,
                    "faults": len(universe),
                    "wall_seconds": round(wall, 4),
                    "artifact_bytes": len(blob),
                }
            )

    dictionary = assemble_dictionary(
        circuit.name, len(tests), reference_responses, "full"
    )
    detected = dictionary.detected_faults()
    latencies = []
    for fault in detected:
        observed = sorted(dictionary.signature(fault))
        started = time.perf_counter()
        diagnosis_report(circuit, tests, dictionary, observed, top=10)
        latencies.append(time.perf_counter() - started)
    query_row = {
        "circuit": name,
        "queries": len(latencies),
        "dictionary_faults": len(dictionary),
        "detected_faults": len(detected),
        "p50_seconds": round(_percentile(latencies, 0.50), 6),
        "p95_seconds": round(_percentile(latencies, 0.95), 6),
    }
    return build_rows, query_row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--circuits", nargs="+", default=None, help="circuit names to measure"
    )
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--patterns", type=int, default=None, help="random vectors")
    parser.add_argument("--repeats", type=int, default=2, help="best-of repeats")
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized workload (seconds, not minutes)"
    )
    parser.add_argument(
        "--out", default="BENCH_diagnosis.json", help="BENCH json output path"
    )
    args = parser.parse_args(argv)

    circuits = args.circuits or (["s27", "s298"] if args.quick else ["s298", "s386", "s526"])
    scale = args.scale if args.scale is not None else (0.15 if args.quick else 1.0)
    patterns = args.patterns or (24 if args.quick else 96)
    jobs_list = [1, 4]
    repeats = 1 if args.quick else args.repeats

    build_rows = []
    query_rows = []
    for name in circuits:
        rows, query = measure_circuit(name, scale, patterns, jobs_list, repeats)
        build_rows.extend(rows)
        query_rows.append(query)
        for row in rows:
            print(
                f"  build {row['circuit']}:{row['mode']}:jobs{row['jobs']}: "
                f"{row['wall_seconds']:.3f}s over {row['faults']} faults "
                f"({row['artifact_bytes']} bytes)"
            )
        print(
            f"  diagnose {query['circuit']}: {query['queries']} queries, "
            f"p50={query['p50_seconds'] * 1e3:.2f}ms "
            f"p95={query['p95_seconds'] * 1e3:.2f}ms"
        )

    path = benchlib.write_bench_json(
        "diagnosis",
        config={"scale": scale, "patterns": patterns, "jobs": jobs_list},
        samples=[
            {
                "label": f"build:{row['circuit']}:{row['mode']}:jobs{row['jobs']}",
                "seconds": row["wall_seconds"],
            }
            for row in build_rows
        ]
        + [
            {
                "label": f"diagnose:{row['circuit']}:p{pct}",
                "seconds": row[f"p{pct}_seconds"],
            }
            for row in query_rows
            for pct in (50, 95)
        ],
        detail={"builds": build_rows, "queries": query_rows},
        out=args.out,
    )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
