"""Table 4 — deterministic patterns (II): higher-coverage test sets.

The paper reruns the csim-MV vs PROOFS comparison on tests from the
authors' own generator, which reach higher coverage; here the ``high``
effort preset of the coverage-directed generator plays that role.
"""

import pytest

from conftest import SCALE, TABLE4_SUBSET, run_once
from repro.harness.runner import run_stuck_at, workload_circuit, workload_tests


@pytest.mark.parametrize("name", TABLE4_SUBSET)
@pytest.mark.parametrize("engine", ("csim-MV", "PROOFS"))
def test_table4_engine(benchmark, name, engine):
    circuit = workload_circuit(name, SCALE)
    tests = workload_tests(name, SCALE, "deterministic-high")
    result = run_once(benchmark, run_stuck_at, circuit, tests, engine)
    benchmark.extra_info.update(
        circuit=name,
        engine=engine,
        patterns=len(tests),
        coverage=round(100.0 * result.coverage, 2),
        peak_mb=round(result.memory.peak_megabytes, 4),
        work=result.counters.total_work(),
    )


@pytest.mark.parametrize("name", TABLE4_SUBSET)
def test_table4_high_effort_tests_cover_more(name):
    """The Table 4 sets must live up to their name: coverage at least that
    of the Table 3 sets on the same circuit."""
    circuit = workload_circuit(name, SCALE)
    standard = workload_tests(name, SCALE, "deterministic")
    high = workload_tests(name, SCALE, "deterministic-high")
    cov_standard = run_stuck_at(circuit, standard, "csim-MV").coverage
    cov_high = run_stuck_at(circuit, high, "csim-MV").coverage
    assert cov_high >= cov_standard - 1e-9
