"""Ablation A3 — event-driven fault dropping.

Section 2.2: "Fault dropping is very important in concurrent fault
simulation because dropped fault effects should be eliminated as soon as
possible."  Dropping changes no detection, only work and live elements.
"""

import pytest

from conftest import SCALE, run_once
from repro.concurrent.engine import ConcurrentFaultSimulator
from repro.concurrent.options import CSIM_V
from repro.harness.runner import workload_circuit, workload_tests

CIRCUITS = ("s298", "s526")


@pytest.mark.parametrize("name", CIRCUITS)
@pytest.mark.parametrize("dropping", (True, False), ids=("drop", "no-drop"))
def test_dropping_ablation(benchmark, name, dropping):
    circuit = workload_circuit(name, SCALE)
    tests = workload_tests(name, SCALE, "deterministic")
    options = CSIM_V.with_(drop_detected=dropping)

    def run():
        return ConcurrentFaultSimulator(circuit, options=options).run(tests)

    result = run_once(benchmark, run)
    benchmark.extra_info.update(
        circuit=name,
        dropping=dropping,
        fault_evaluations=result.counters.fault_evaluations,
        final_elements=result.memory.live_elements,
    )


@pytest.mark.parametrize("name", CIRCUITS)
def test_dropping_preserves_results_and_cuts_work(name):
    circuit = workload_circuit(name, SCALE)
    tests = workload_tests(name, SCALE, "deterministic")
    dropped = ConcurrentFaultSimulator(
        circuit, options=CSIM_V.with_(drop_detected=True)
    ).run(tests)
    kept = ConcurrentFaultSimulator(
        circuit, options=CSIM_V.with_(drop_detected=False)
    ).run(tests)
    assert dropped.detected == kept.detected
    assert dropped.counters.fault_evaluations <= kept.counters.fault_evaluations
