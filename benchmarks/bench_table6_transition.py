"""Table 6 — transition-fault simulation of the stuck-at test sets.

The paper's finding: "The stuck at tests are not good tests for transition
faults.  Fault coverages are in general much less than 50%."  The benchmark
times the two-pass concurrent transition engine; the shape test asserts
the coverage gap.
"""

import pytest

from conftest import SCALE, TABLE6_SUBSET, run_once
from repro.faults.transition import all_transition_faults
from repro.harness.runner import (
    run_stuck_at,
    run_transition,
    workload_circuit,
    workload_tests,
)


@pytest.mark.parametrize("name", TABLE6_SUBSET)
def test_table6_transition_simulation(benchmark, name):
    circuit = workload_circuit(name, SCALE)
    tests = workload_tests(name, SCALE, "deterministic")
    result = run_once(benchmark, run_transition, circuit, tests)
    benchmark.extra_info.update(
        circuit=name,
        faults=len(all_transition_faults(circuit)),
        patterns=len(tests),
        coverage=round(100.0 * result.coverage, 2),
        peak_mb=round(result.memory.peak_megabytes, 4),
    )


@pytest.mark.parametrize("name", TABLE6_SUBSET)
def test_table6_stuck_tests_are_poor_transition_tests(name):
    """Transition coverage of a stuck-at test set trails its stuck-at
    coverage — the observation motivating the paper's Section 3."""
    circuit = workload_circuit(name, SCALE)
    tests = workload_tests(name, SCALE, "deterministic")
    stuck = run_stuck_at(circuit, tests, "csim-MV")
    transition = run_transition(circuit, tests)
    assert transition.coverage <= stuck.coverage
