"""Ablation A2 — visible/invisible fault-list splitting (the ``-V``
improvement).

Section 2.2: "We found that splitting fault lists help reduce computation
time."  The split keeps propagation and detection from scanning invisible
elements; the element-visit counter shows exactly the avoided work.
"""

import pytest

from conftest import SCALE, run_once
from repro.concurrent.engine import ConcurrentFaultSimulator
from repro.concurrent.options import CSIM, CSIM_V
from repro.harness.runner import workload_circuit, workload_tests

CIRCUITS = ("s298", "s526")


@pytest.mark.parametrize("name", CIRCUITS)
@pytest.mark.parametrize("variant", ("csim", "csim-V"))
def test_split_ablation(benchmark, name, variant):
    circuit = workload_circuit(name, SCALE)
    tests = workload_tests(name, SCALE, "deterministic")
    options = CSIM_V if variant == "csim-V" else CSIM

    def run():
        return ConcurrentFaultSimulator(circuit, options=options).run(tests)

    result = run_once(benchmark, run)
    benchmark.extra_info.update(
        circuit=name,
        variant=variant,
        element_visits=result.counters.element_visits,
        fault_evaluations=result.counters.fault_evaluations,
    )


@pytest.mark.parametrize("name", CIRCUITS)
def test_split_reduces_list_scanning(name):
    circuit = workload_circuit(name, SCALE)
    tests = workload_tests(name, SCALE, "deterministic")
    merged = ConcurrentFaultSimulator(circuit, options=CSIM).run(tests)
    split = ConcurrentFaultSimulator(circuit, options=CSIM_V).run(tests)
    assert split.detected == merged.detected
    assert split.counters.element_visits <= merged.counters.element_visits
    # Memory is essentially unchanged: the same divergences exist, just on
    # two lists.  (Peaks can differ by a hair: the merged scan evaluates
    # invisible candidates too, which may converge stale elements a little
    # earlier or later within a cycle.)
    assert (
        abs(split.memory.peak_elements - merged.memory.peak_elements)
        <= 0.05 * max(split.memory.peak_elements, 1)
    )
