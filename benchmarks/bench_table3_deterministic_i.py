"""Table 3 — deterministic patterns (I): every engine on the same tests.

The paper's comparison: csim / csim-V / csim-M / csim-MV / PROOFS over the
deterministic test sets, reporting CPU and memory.  Claims encoded as
assertions: all engines agree on detections; the improved variants do less
work than base csim (work counters, which are deterministic, stand in for
the paper's CPU column; wall time is also recorded).
"""

import pytest

from conftest import SCALE, TABLE3_SUBSET, run_once
from repro.harness.runner import run_stuck_at, workload_circuit, workload_tests

ENGINES = ("csim", "csim-V", "csim-M", "csim-MV", "PROOFS")


@pytest.mark.parametrize("name", TABLE3_SUBSET)
@pytest.mark.parametrize("engine", ENGINES)
def test_table3_engine(benchmark, name, engine):
    circuit = workload_circuit(name, SCALE)
    tests = workload_tests(name, SCALE, "deterministic")
    result = run_once(benchmark, run_stuck_at, circuit, tests, engine)
    benchmark.extra_info.update(
        circuit=name,
        engine=engine,
        patterns=len(tests),
        coverage=round(100.0 * result.coverage, 2),
        peak_mb=round(result.memory.peak_megabytes, 4),
        work=result.counters.total_work(),
    )


@pytest.mark.parametrize("name", TABLE3_SUBSET)
def test_table3_consistency_and_shape(name):
    """Not a timing benchmark: the table's correctness and shape claims."""
    circuit = workload_circuit(name, SCALE)
    tests = workload_tests(name, SCALE, "deterministic")
    results = {
        engine: run_stuck_at(circuit, tests, engine) for engine in ENGINES
    }
    detections = {engine: result.detected for engine, result in results.items()}
    reference = detections["csim"]
    for engine, detected in detections.items():
        assert detected == reference, f"{engine} disagrees on {name}"
    # Section 2.2: splitting the lists reduces the elements examined.
    assert (
        results["csim-V"].counters.element_visits
        <= results["csim"].counters.element_visits
    )
    # Macro extraction reduces good-machine evaluations (fewer gates).
    assert (
        results["csim-M"].counters.good_evaluations
        <= results["csim"].counters.good_evaluations
    )
