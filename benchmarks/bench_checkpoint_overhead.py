"""Checkpointing overhead — what resilience costs an uninterrupted run.

Three configurations of the same deterministic workload:

* ``plain``      — the raw engine loop (``run_stuck_at``), no resilience;
* ``infrequent`` — ``run_checkpointed`` writing every 64 cycles (the
                   default cadence);
* ``frequent``   — ``run_checkpointed`` writing every 4 cycles (a
                   paranoid cadence, near the worst case).

The result must be bit-identical in every configuration — checkpointing
observes the campaign, it never changes it — and the default cadence is
expected to stay cheap: snapshot + atomic write amortized over 64 cycles
of pure-Python simulation.  The checkpoint file size is recorded so a
regression in snapshot footprint shows up alongside the timing.
"""

import os

import pytest

from conftest import SCALE, run_once
from repro.harness.runner import run_stuck_at, workload_circuit, workload_tests
from repro.robust import run_checkpointed

CIRCUITS = ("s298", "s526")

MODES = ("plain", "infrequent", "frequent")

_EVERY = {"infrequent": 64, "frequent": 4}


@pytest.mark.parametrize("name", CIRCUITS)
@pytest.mark.parametrize("mode", MODES)
def test_checkpoint_overhead(benchmark, tmp_path, name, mode):
    circuit = workload_circuit(name, SCALE)
    tests = workload_tests(name, SCALE, "deterministic")
    path = str(tmp_path / "ck.pkl")

    def run():
        if mode == "plain":
            return run_stuck_at(circuit, tests, "csim-MV")
        return run_checkpointed(
            circuit,
            tests,
            "csim-MV",
            checkpoint_path=path,
            checkpoint_every=_EVERY[mode],
        )

    result = run_once(benchmark, run)
    extra = dict(
        circuit=name,
        mode=mode,
        total_work=result.counters.total_work(),
        wall_seconds=result.wall_seconds,
    )
    if mode != "plain":
        extra["checkpoint_bytes"] = os.path.getsize(path)
    benchmark.extra_info.update(extra)


@pytest.mark.parametrize("name", CIRCUITS)
def test_checkpointing_never_changes_the_simulation(tmp_path, name):
    circuit = workload_circuit(name, SCALE)
    tests = workload_tests(name, SCALE, "deterministic")
    reference = run_stuck_at(circuit, tests, "csim-MV")
    for mode in ("infrequent", "frequent"):
        checkpointed = run_checkpointed(
            circuit,
            tests,
            "csim-MV",
            checkpoint_path=str(tmp_path / f"{mode}.pkl"),
            checkpoint_every=_EVERY[mode],
        )
        assert checkpointed.detected == reference.detected
        assert checkpointed.counters == reference.counters
        assert checkpointed.memory.peak_bytes == reference.memory.peak_bytes
