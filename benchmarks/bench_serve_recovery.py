"""Serve recovery — lease-expiry detection latency and retry overhead.

Exercises the fault-tolerant execution plane end to end, in process (no
HTTP): a worker claims a job, dies mid-run (``step_bomb`` raising
``KeyboardInterrupt``, the worker-kill shape), and the reaper must notice
the expired lease, re-queue the job, and let the retry resume from the
last checkpoint to a bit-identical result.

Two measurements per lease TTL:

* **detect_seconds** — wall clock from the kill to the reaper re-queuing
  the job.  Dominated by the TTL itself (the reaper cannot distinguish a
  dead worker from a slow one any sooner), so the curve is the honest
  cost of the chosen TTL: shorter TTLs recover faster but tolerate less
  heartbeat jitter.
* **recovered_seconds** vs **clean_seconds** — the end-to-end wall of a
  killed-then-recovered job against an identical uninterrupted one; the
  difference is the full price of a crash (detection + re-queue + resume
  from checkpoint instead of recompute).

``--cycles N`` turns the run into a soak: N kill-and-reap cycles against
one live service instance, every recovered result asserted byte-identical
to a direct run.  CI's ``serve-chaos`` job runs this under a timeout and
uploads the BENCH json as an artifact.

Usage::

    python benchmarks/bench_serve_recovery.py             # full TTL sweep
    python benchmarks/bench_serve_recovery.py --quick     # CI-sized
    python benchmarks/bench_serve_recovery.py --cycles 10 # soak
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import benchlib

from repro.circuit.library import load
from repro.concurrent.engine import ConcurrentFaultSimulator
from repro.harness.runner import run_stuck_at
from repro.patterns.random_gen import random_sequence
from repro.robust.chaos import step_bomb
from repro.serve import FaultSimService, ServeConfig, serialize_result

PATTERNS = 60
KILL_AFTER = 20
CHECKPOINT_EVERY = 8


def make_service(state_dir: str, lease_ttl: float) -> FaultSimService:
    return FaultSimService(
        ServeConfig(
            state_dir=state_dir,
            workers=0,
            checkpoint_every=CHECKPOINT_EVERY,
            cache_results=False,  # every job must actually simulate
            lease_ttl=lease_ttl,
            retry_jitter=0.0,
        )
    )


def expected_blob(seed: int) -> bytes:
    circuit = load("s27")
    result = run_stuck_at(
        circuit, random_sequence(circuit, PATTERNS, seed=seed), "csim-MV"
    )
    return serialize_result(result, circuit)


def kill_and_recover(service: FaultSimService, seed: int) -> tuple:
    """One kill-and-reap cycle; returns (detect_seconds, total_seconds, record)."""
    started = time.perf_counter()
    record, _ = service.submit(
        {"circuit": "s27", "random_patterns": PATTERNS, "seed": seed}
    )
    with step_bomb(ConcurrentFaultSimulator, after_steps=KILL_AFTER):
        try:
            service.process_once()
        except KeyboardInterrupt:
            pass
    killed_at = time.perf_counter()
    while service.status(record.job_id).state != "queued":
        service.reap()
        time.sleep(0.002)
    detect = time.perf_counter() - killed_at
    finished_jobs = service.drain()
    assert finished_jobs == 1, f"drain finished {finished_jobs} jobs, wanted 1"
    total = time.perf_counter() - started
    finished = service.status(record.job_id)
    assert finished.state == "done", finished.error
    assert finished.attempts == 2
    assert finished.resumed_from_cycle > 0, "retry recomputed instead of resuming"
    return detect, total, finished


def clean_run(service: FaultSimService, seed: int) -> float:
    started = time.perf_counter()
    record, _ = service.submit(
        {"circuit": "s27", "random_patterns": PATTERNS, "seed": seed}
    )
    assert service.drain() == 1
    assert service.status(record.job_id).state == "done"
    return time.perf_counter() - started


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized sweep")
    parser.add_argument(
        "--cycles",
        type=int,
        default=3,
        metavar="N",
        help="kill-and-reap cycles per lease TTL (default 3)",
    )
    parser.add_argument("--out", metavar="PATH", help="output path for the json")
    args = parser.parse_args()

    ttls = (0.05, 0.1) if args.quick else (0.05, 0.1, 0.25, 0.5, 1.0)
    cycles = max(1, args.cycles)
    samples = []
    curve = []
    seed = 0
    for ttl in ttls:
        state_dir = tempfile.mkdtemp(prefix="repro-bench-recovery-")
        try:
            service = make_service(state_dir, ttl)
            detects = []
            totals = []
            cleans = []
            for _ in range(cycles):
                seed += 1
                detect, total, finished = kill_and_recover(service, seed)
                blob = service.result_bytes(finished.job_id)
                assert blob == expected_blob(seed), (
                    f"ttl={ttl} seed={seed}: recovered result is not "
                    "bit-identical to the direct run"
                )
                detects.append(detect)
                totals.append(total)
                samples.append(
                    {
                        "label": f"recover[ttl={ttl:g},seed={seed}]",
                        "seconds": round(total, 6),
                        "detect_seconds": round(detect, 6),
                        "resumed_from_cycle": finished.resumed_from_cycle,
                    }
                )
                seed += 1
                cleans.append(clean_run(service, seed))
            point = {
                "lease_ttl": ttl,
                "cycles": cycles,
                "detect_p50_seconds": round(benchlib.percentile(detects, 0.5), 6),
                "recovered_p50_seconds": round(benchlib.percentile(totals, 0.5), 6),
                "clean_p50_seconds": round(benchlib.percentile(cleans, 0.5), 6),
                "retry_overhead_seconds": round(
                    benchlib.percentile(totals, 0.5)
                    - benchlib.percentile(cleans, 0.5),
                    6,
                ),
            }
            curve.append(point)
            print(
                f"# ttl={ttl:g}s: detect p50 {point['detect_p50_seconds']}s, "
                f"recovered {point['recovered_p50_seconds']}s vs clean "
                f"{point['clean_p50_seconds']}s "
                f"(overhead {point['retry_overhead_seconds']}s)"
            )
        finally:
            shutil.rmtree(state_dir, ignore_errors=True)

    path = benchlib.write_bench_json(
        "serve_recovery",
        config={
            "circuit": "s27",
            "patterns": PATTERNS,
            "kill_after_cycles": KILL_AFTER,
            "checkpoint_every": CHECKPOINT_EVERY,
            "cycles_per_ttl": cycles,
            "quick": args.quick,
        },
        samples=samples,
        detail={"recovery_vs_lease_ttl": curve},
        out=args.out,
    )
    print(f"# wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
