"""Structural-untestability pruning — reduction, speedup, sanitizer cost.

Measures three things on a deterministic workload and records them into a
BENCH json:

* how much of the collapsed stuck-at universe the structural analysis
  removes (``reduction_pct`` per circuit);
* the end-to-end wall-clock speedup of simulating only the survivors,
  asserting — always — that the survivors' detections are bit-identical
  to the unpruned run restricted to the same faults;
* the overhead of running with ``--sanitize`` (the fault-list invariant
  checker) relative to a plain run.

Usage::

    python benchmarks/bench_prune_untestable.py             # mid-size subset
    python benchmarks/bench_prune_untestable.py --quick     # CI-sized
    python benchmarks/bench_prune_untestable.py --out BENCH_prune.json

Shipped ISCAS'89 benchmarks are mostly fully-testable at the structural
level, so the reduction there is honest but small; the dangling/constant
rich synthetic netlists that motivate pruning show up in the unit tests,
not here.  Timing numbers are best-of-``--repeats`` wall seconds.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import benchlib

from repro.analyze import prune_untestable
from repro.circuit.netlist import CircuitBuilder
from repro.faults.universe import stuck_at_universe
from repro.harness.runner import (
    engine_options,
    run_stuck_at,
    workload_circuit,
    workload_tests,
)
from repro.logic.tables import GateType
from repro.patterns.random_gen import random_sequence


def synthetic_prunable(stages: int):
    """An observable chain plus a dangling cone and a constant stem.

    Roughly a third of the collapsed universe is structurally
    untestable, so the pruned-vs-full comparison measures real work
    saved rather than timing noise.
    """
    builder = CircuitBuilder(f"prunable{stages}")
    for index in range(4):
        builder.add_input(f"a{index}")
    previous = "a0"
    for index in range(stages):
        builder.add_gate(f"g{index}", GateType.NAND, [previous, f"a{index % 4}"])
        previous = f"g{index}"
    # Dangling cone: as deep as the observable chain, never reaches an output.
    dangling = "a1"
    for index in range(stages):
        builder.add_gate(f"d{index}", GateType.NOR, [dangling, f"a{(index + 1) % 4}"])
        dangling = f"d{index}"
    # Constant-0 stem with fanout >= 2 so its stuck-at-0 survives collapsing.
    builder.add_gate("c0", GateType.CONST0, [])
    builder.add_gate("y", GateType.OR, [previous, "c0"])
    builder.add_gate("z", GateType.OR, ["a3", "c0"])
    builder.set_output("y")
    builder.set_output("z")
    return builder.build()


def _best_of(repeats, function, *args, **kwargs):
    """Best wall seconds plus the (deterministic) result."""
    function(*args, **kwargs)  # warm-up: caches and code paths
    best = None
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = function(*args, **kwargs)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def measure_circuit(name, scale, patterns, repeats):
    if name.startswith("prunable"):
        circuit = synthetic_prunable(int(name[len("prunable") :]))
        tests = random_sequence(circuit, patterns, seed=7)
    else:
        circuit = workload_circuit(name, scale)
        tests = workload_tests(name, scale, "random", length=patterns)
    universe = stuck_at_universe(circuit)
    report = prune_untestable(circuit, universe)

    full_wall, full = _best_of(repeats, run_stuck_at, circuit, tests, "csim-MV")
    pruned_wall, pruned = _best_of(
        repeats, run_stuck_at, circuit, tests, "csim-MV", faults=report.kept
    )
    kept = set(report.kept)
    expected = {f: c for f, c in full.detected.items() if f in kept}
    assert pruned.detected == expected, (
        f"{name}: pruning changed survivor detections — analysis is unsound"
    )

    sanitized_options = engine_options("csim-MV").with_(sanitize=True)
    sanitized_wall, sanitized = _best_of(
        repeats, run_stuck_at, circuit, tests, "csim-MV", options=sanitized_options
    )
    assert sanitized.detected == full.detected

    return {
        "circuit": name,
        "faults_total": report.total,
        "faults_pruned": len(report.pruned),
        "reduction_pct": round(100.0 * report.reduction, 2),
        "full_wall_seconds": round(full_wall, 4),
        "pruned_wall_seconds": round(pruned_wall, 4),
        "prune_speedup": round(full_wall / pruned_wall, 3),
        "sanitized_wall_seconds": round(sanitized_wall, 4),
        "sanitizer_overhead": round(sanitized_wall / full_wall, 3),
        "detected": len(full.detected),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--circuits", nargs="+", default=None, help="circuit names to measure"
    )
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--patterns", type=int, default=None, help="random vectors")
    parser.add_argument("--repeats", type=int, default=2, help="best-of repeats")
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized workload (seconds, not minutes)"
    )
    parser.add_argument(
        "--out", default="BENCH_prune_untestable.json", help="BENCH json output path"
    )
    args = parser.parse_args(argv)

    circuits = args.circuits or (
        ["prunable24", "s298", "s386"]
        if args.quick
        else ["prunable96", "s298", "s386", "s526", "s1238"]
    )
    # Full scale by default: rescaled synthetic variants of the shipped
    # netlists are fully testable, which would hide the real reductions.
    scale = args.scale if args.scale is not None else (0.15 if args.quick else 1.0)
    patterns = args.patterns or (32 if args.quick else 128)
    repeats = 1 if args.quick else args.repeats

    rows = []
    for name in circuits:
        row = measure_circuit(name, scale, patterns, repeats)
        rows.append(row)
        print(
            f"  {name}: pruned {row['faults_pruned']}/{row['faults_total']} "
            f"({row['reduction_pct']:.1f}%)  speedup={row['prune_speedup']:.2f}x  "
            f"sanitizer-overhead={row['sanitizer_overhead']:.2f}x"
        )

    path = benchlib.write_bench_json(
        "prune_untestable",
        config={"scale": scale, "patterns": patterns, "engine": "csim-MV"},
        samples=[
            {"label": f"{row['circuit']}:{kind}", "seconds": row[f"{kind}_wall_seconds"]}
            for row in rows
            for kind in ("full", "pruned", "sanitized")
        ],
        detail={"results": rows},
        out=args.out,
    )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
