"""Vector-kernel speedup — width sweep, engine comparison, axis ablation.

Measures the pattern-parallel ``vsim`` kernel (:mod:`repro.vector`)
against the per-element ``csim`` baseline and the fault-axis ``PROOFS``
word engine, and records three things into ``BENCH_vector_speedup.json``:

* the speedup curve over word widths 1/32/64/256 per table circuit
  (``vsim`` uses the numpy plane automatically up to width 64, the
  scalar word path above that; every run is asserted bit-identical to
  the ``csim`` reference before its timing counts);
* an axis-choice ablation on a mixed workload — one full-universe job
  (many live faults, where the dense pattern plane wins) plus several
  small targeted-fault-list jobs over deep vectors (where the
  event-driven fault axis wins) — run with the axis fixed to ``fault``,
  fixed to ``pattern``, and under the auto scheduler, which should beat
  both fixed choices on the total;
* the :func:`repro.vector.scheduler.predict_axes` mix for a
  work-stealing partition of the big job, showing the two-dimensional
  composition (big shards start fault-axis, small shards pattern-axis
  under the scalar cost model, and vice versa under the dense one).

Usage::

    python benchmarks/bench_vector_speedup.py             # full table set
    python benchmarks/bench_vector_speedup.py --quick     # CI smoke
    python benchmarks/bench_vector_speedup.py --circuits s1238 s1494

Timing numbers are best-of-``--repeats`` wall seconds.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import benchlib

from repro.faults.universe import stuck_at_universe
from repro.harness.runner import run_stuck_at, workload_circuit
from repro.parallel.sharding import shard_faults
from repro.patterns.random_gen import random_sequence
from repro.vector import plane
from repro.vector.scheduler import predict_axes

#: The ISSUE's width sweep: 1 (degenerate, no packing gain), the two
#: machine-word sizes, and one beyond the numpy plane's uint64 limit.
DEFAULT_WIDTHS = (1, 32, 64, 256)


def _best_of(repeats, function, *args, **kwargs):
    """Best wall seconds plus the (deterministic) result."""
    best = None
    result = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        result = function(*args, **kwargs)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _assert_identical(name, label, reference, candidate):
    assert candidate.detected == reference.detected, (
        f"{name}: {label} changed hard detections — kernel is unsound"
    )
    assert candidate.potentially_detected == reference.potentially_detected, (
        f"{name}: {label} changed potential detections — kernel is unsound"
    )


def measure_circuit(name, patterns, widths, repeats):
    """Width sweep on one circuit: csim vs PROOFS vs vsim, bit-checked."""
    circuit = workload_circuit(name)
    tests = random_sequence(circuit, patterns, seed=1992)
    faults = stuck_at_universe(circuit)

    csim_wall, reference = _best_of(
        repeats, run_stuck_at, circuit, tests, "csim", faults
    )
    row = {
        "circuit": name,
        "gates": len(circuit.gates),
        "faults": len(faults),
        "patterns": patterns,
        "detected": len(reference.detected),
        "csim_wall_seconds": round(csim_wall, 4),
        "widths": [],
    }
    for width in widths:
        proofs_wall, proofs = _best_of(
            repeats, run_stuck_at, circuit, tests, "PROOFS", faults,
            word_width=width,
        )
        _assert_identical(name, f"PROOFS w{width}", reference, proofs)
        vsim_wall, vsim = _best_of(
            repeats, run_stuck_at, circuit, tests, "vsim", faults,
            word_width=width,
        )
        _assert_identical(name, f"vsim w{width}", reference, vsim)
        row["widths"].append(
            {
                "width": width,
                "plane": plane.available() and width <= plane.MAX_PLANE_WIDTH,
                "proofs_wall_seconds": round(proofs_wall, 4),
                "vsim_wall_seconds": round(vsim_wall, 4),
                "vsim_speedup_vs_csim": round(csim_wall / vsim_wall, 3),
                "vsim_speedup_vs_proofs": round(proofs_wall / vsim_wall, 3),
                "axis_windows": dict(vsim.axis_windows or {}),
            }
        )
    return row


def _ablation_jobs(quick):
    """The mixed workload: one big full-universe job + small targeted jobs.

    The big job (every fault live, moderate depth) is where the dense
    pattern plane wins; the small jobs (16 live faults, deep vectors on
    a feedback-heavy circuit) are where the event-driven fault axis
    wins.  A fixed axis loses one side or the other; only the scheduler
    can win both.
    """
    if quick:
        big_name, big_patterns = "s344", 96
        small_name, small_patterns, small_jobs, small_sample = "s298", 512, 2, 8
    else:
        big_name, big_patterns = "s1238", 256
        small_name, small_patterns, small_jobs, small_sample = "s526", 2048, 4, 16

    big_circuit = workload_circuit(big_name)
    big = (big_circuit, random_sequence(big_circuit, big_patterns, seed=7),
           stuck_at_universe(big_circuit))

    small_circuit = workload_circuit(small_name)
    small_tests = random_sequence(small_circuit, small_patterns, seed=11)
    small_universe = stuck_at_universe(small_circuit)
    rng = random.Random(42)
    smalls = [
        (small_circuit, small_tests, sorted(rng.sample(small_universe, small_sample)))
        for _ in range(small_jobs)
    ]
    return [big] + smalls


def measure_ablation(quick, repeats):
    """Total mixed-workload wall for fixed-fault, fixed-pattern and auto."""
    jobs = _ablation_jobs(quick)
    width = 64
    totals = {}
    job_walls = {}
    references = None
    for axis in ("fault", "pattern", "auto"):
        walls = []
        results = []
        for circuit, tests, faults in jobs:
            wall, result = _best_of(
                repeats, run_stuck_at, circuit, tests, "vsim", faults,
                word_width=width, axis_mode=axis,
            )
            walls.append(wall)
            results.append(result)
        if references is None:
            references = results
        else:
            for job, (reference, result) in enumerate(zip(references, results)):
                _assert_identical(
                    f"ablation job {job}", f"axis {axis}", reference, result
                )
        totals[axis] = round(sum(walls), 4)
        job_walls[axis] = [round(wall, 4) for wall in walls]

    big_circuit, _, big_faults = jobs[0]
    shards = shard_faults(big_circuit, big_faults, jobs=4, strategy="work-stealing")
    live_counts = [len(shard) for shard in shards]
    return {
        "word_width": width,
        "jobs": [
            {"circuit": circuit.name, "patterns": len(tests.vectors),
             "faults": len(faults)}
            for circuit, tests, faults in jobs
        ],
        "total_wall_seconds": totals,
        "job_wall_seconds": job_walls,
        "auto_beats_fault": totals["auto"] < totals["fault"],
        "auto_beats_pattern": totals["auto"] < totals["pattern"],
        "shard_live_counts": live_counts,
        "shard_axis_mix": {
            "scalar": predict_axes(live_counts, len(jobs[0][1].vectors), width),
            "dense": predict_axes(
                live_counts, len(jobs[0][1].vectors), width, dense=True
            ),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--circuits", nargs="+", default=None, help="circuit names to measure"
    )
    parser.add_argument("--patterns", type=int, default=None, help="random vectors")
    parser.add_argument(
        "--widths", nargs="+", type=int, default=None, help="word widths to sweep"
    )
    parser.add_argument("--repeats", type=int, default=2, help="best-of repeats")
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized workload (seconds, not minutes)"
    )
    parser.add_argument(
        "--skip-ablation", action="store_true", help="width sweep only"
    )
    parser.add_argument(
        "--out", default="BENCH_vector_speedup.json", help="BENCH json output path"
    )
    args = parser.parse_args(argv)

    circuits = args.circuits or (
        ["s298", "s344"]
        if args.quick
        else ["s298", "s344", "s526", "s820", "s1238", "s1494"]
    )
    patterns = args.patterns or (48 if args.quick else 256)
    widths = tuple(args.widths) if args.widths else (
        (1, 64) if args.quick else DEFAULT_WIDTHS
    )
    repeats = 1 if args.quick else args.repeats

    rows = []
    for name in circuits:
        row = measure_circuit(name, patterns, widths, repeats)
        rows.append(row)
        for sweep in row["widths"]:
            print(
                f"  {name} w{sweep['width']}: csim={row['csim_wall_seconds']:.3f}s "
                f"PROOFS={sweep['proofs_wall_seconds']:.3f}s "
                f"vsim={sweep['vsim_wall_seconds']:.3f}s "
                f"({sweep['vsim_speedup_vs_csim']:.2f}x vs csim, "
                f"{sweep['vsim_speedup_vs_proofs']:.2f}x vs PROOFS)"
            )

    ablation = None
    if not args.skip_ablation:
        ablation = measure_ablation(args.quick, repeats)
        totals = ablation["total_wall_seconds"]
        print(
            f"  axis ablation: fault={totals['fault']:.3f}s "
            f"pattern={totals['pattern']:.3f}s auto={totals['auto']:.3f}s "
            f"(auto beats fault: {ablation['auto_beats_fault']}, "
            f"beats pattern: {ablation['auto_beats_pattern']})"
        )

    samples = [
        {"label": f"{row['circuit']}:csim", "seconds": row["csim_wall_seconds"]}
        for row in rows
    ]
    for row in rows:
        for sweep in row["widths"]:
            samples.append(
                {
                    "label": f"{row['circuit']}:vsim:w{sweep['width']}",
                    "seconds": sweep["vsim_wall_seconds"],
                }
            )
            samples.append(
                {
                    "label": f"{row['circuit']}:PROOFS:w{sweep['width']}",
                    "seconds": sweep["proofs_wall_seconds"],
                }
            )
    if ablation is not None:
        samples.extend(
            {"label": f"ablation:{axis}", "seconds": seconds}
            for axis, seconds in ablation["total_wall_seconds"].items()
        )

    path = benchlib.write_bench_json(
        "vector_speedup",
        config={
            "patterns": patterns,
            "widths": list(widths),
            "repeats": repeats,
            "quick": args.quick,
            "numpy_plane": plane.available(),
        },
        samples=samples,
        detail={"results": rows, "axis_ablation": ablation},
        out=args.out,
    )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
